//! Connectivity and cycle analysis.
//!
//! The synthesis flow uses these to validate glued architectures (every
//! core must be able to reach every other) and to detect deadlock-prone
//! cycles in channel dependency graphs (Section 4.5 of the paper).

use crate::{DiGraph, NodeId};

/// Weakly connected components: connectivity ignoring edge direction.
///
/// Returns one sorted vertex list per component, components ordered by their
/// smallest vertex. Isolated vertices form singleton components.
pub fn weak_components(g: &DiGraph) -> Vec<Vec<NodeId>> {
    let n = g.node_count();
    let mut comp = vec![usize::MAX; n];
    let mut next = 0;
    for start in 0..n {
        if comp[start] != usize::MAX {
            continue;
        }
        comp[start] = next;
        let mut stack = vec![NodeId(start)];
        while let Some(u) = stack.pop() {
            for v in g.successors(u).chain(g.predecessors(u)) {
                if comp[v.index()] == usize::MAX {
                    comp[v.index()] = next;
                    stack.push(v);
                }
            }
        }
        next += 1;
    }
    let mut out = vec![Vec::new(); next];
    for (v, &c) in comp.iter().enumerate() {
        out[c].push(NodeId(v));
    }
    out
}

/// Returns `true` if the graph is weakly connected (a single component).
///
/// The empty graph is considered connected.
pub fn is_weakly_connected(g: &DiGraph) -> bool {
    weak_components(g).len() <= 1
}

/// Tarjan's strongly connected components.
///
/// Returns components in reverse topological order (standard for Tarjan),
/// each sorted ascending internally.
pub fn strongly_connected_components(g: &DiGraph) -> Vec<Vec<NodeId>> {
    let n = g.node_count();
    let mut index = vec![usize::MAX; n];
    let mut lowlink = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut components: Vec<Vec<NodeId>> = Vec::new();

    // Iterative Tarjan to avoid recursion limits on long paths.
    enum Frame {
        Enter(usize),
        Resume(usize, usize), // (vertex, child just finished)
    }
    for root in 0..n {
        if index[root] != usize::MAX {
            continue;
        }
        let mut call: Vec<Frame> = vec![Frame::Enter(root)];
        // Per-vertex successor cursor.
        let mut cursor: Vec<usize> = vec![0; n];
        while let Some(frame) = call.pop() {
            let v = match frame {
                Frame::Enter(v) => {
                    index[v] = next_index;
                    lowlink[v] = next_index;
                    next_index += 1;
                    stack.push(v);
                    on_stack[v] = true;
                    v
                }
                Frame::Resume(v, child) => {
                    lowlink[v] = lowlink[v].min(lowlink[child]);
                    v
                }
            };
            let succs: Vec<usize> = g.successors(NodeId(v)).map(NodeId::index).collect();
            let mut suspended = false;
            while cursor[v] < succs.len() {
                let w = succs[cursor[v]];
                cursor[v] += 1;
                if index[w] == usize::MAX {
                    call.push(Frame::Resume(v, w));
                    call.push(Frame::Enter(w));
                    suspended = true;
                    break;
                } else if on_stack[w] {
                    lowlink[v] = lowlink[v].min(index[w]);
                }
            }
            if suspended {
                continue;
            }
            if lowlink[v] == index[v] {
                let mut comp = Vec::new();
                loop {
                    let w = stack.pop().expect("tarjan stack invariant");
                    on_stack[w] = false;
                    comp.push(NodeId(w));
                    if w == v {
                        break;
                    }
                }
                comp.sort();
                components.push(comp);
            }
        }
    }
    components
}

/// Finds a directed cycle, returned as the vertex sequence
/// `v0 -> v1 -> … -> v0` (first vertex repeated at the end), or `None` for
/// acyclic graphs.
///
/// Used for deadlock detection: a cycle in the channel dependency graph
/// means the routing function can deadlock (the paper proposes breaking
/// such cycles with virtual channels).
pub fn find_cycle(g: &DiGraph) -> Option<Vec<NodeId>> {
    let n = g.node_count();
    #[derive(Clone, Copy, PartialEq)]
    enum Color {
        White,
        Gray,
        Black,
    }
    let mut color = vec![Color::White; n];
    let mut parent: Vec<Option<NodeId>> = vec![None; n];

    for root in 0..n {
        if color[root] != Color::White {
            continue;
        }
        // Iterative DFS with explicit successor cursors.
        let mut cursors = vec![0usize; n];
        let mut stack = vec![root];
        color[root] = Color::Gray;
        while let Some(&u) = stack.last() {
            let succs: Vec<usize> = g.successors(NodeId(u)).map(NodeId::index).collect();
            if cursors[u] < succs.len() {
                let v = succs[cursors[u]];
                cursors[u] += 1;
                match color[v] {
                    Color::White => {
                        parent[v] = Some(NodeId(u));
                        color[v] = Color::Gray;
                        stack.push(v);
                    }
                    Color::Gray => {
                        // Back edge u -> v closes a cycle v -> ... -> u -> v.
                        let mut cycle = vec![NodeId(u)];
                        let mut cur = NodeId(u);
                        while cur != NodeId(v) {
                            cur = parent[cur.index()].expect("gray vertices have parents");
                            cycle.push(cur);
                        }
                        cycle.reverse();
                        cycle.push(NodeId(v));
                        return Some(cycle);
                    }
                    Color::Black => {}
                }
            } else {
                color[u] = Color::Black;
                stack.pop();
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weak_components_of_disjoint_edges() {
        let g = DiGraph::from_edges(5, [(0, 1), (2, 3)]).unwrap();
        let comps = weak_components(&g);
        assert_eq!(comps.len(), 3);
        assert_eq!(comps[0], vec![NodeId(0), NodeId(1)]);
        assert_eq!(comps[1], vec![NodeId(2), NodeId(3)]);
        assert_eq!(comps[2], vec![NodeId(4)]);
        assert!(!is_weakly_connected(&g));
    }

    #[test]
    fn direction_is_ignored_for_weak_connectivity() {
        let g = DiGraph::from_edges(3, [(0, 1), (2, 1)]).unwrap();
        assert!(is_weakly_connected(&g));
    }

    #[test]
    fn empty_graph_is_connected() {
        assert!(is_weakly_connected(&DiGraph::new(0)));
        assert!(is_weakly_connected(&DiGraph::new(1)));
    }

    #[test]
    fn scc_of_cycle_is_single_component() {
        let comps = strongly_connected_components(&DiGraph::cycle(5));
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0].len(), 5);
    }

    #[test]
    fn scc_of_path_is_singletons() {
        let comps = strongly_connected_components(&DiGraph::path(4));
        assert_eq!(comps.len(), 4);
        assert!(comps.iter().all(|c| c.len() == 1));
    }

    #[test]
    fn scc_mixed_structure() {
        // 0 <-> 1 cycle, plus 1 -> 2 -> 3 chain, plus 3 <-> 4 cycle.
        let g = DiGraph::from_edges(5, [(0, 1), (1, 0), (1, 2), (2, 3), (3, 4), (4, 3)]).unwrap();
        let mut comps = strongly_connected_components(&g);
        comps.sort();
        assert_eq!(
            comps,
            vec![
                vec![NodeId(0), NodeId(1)],
                vec![NodeId(2)],
                vec![NodeId(3), NodeId(4)],
            ]
        );
    }

    #[test]
    fn find_cycle_on_acyclic_graph_is_none() {
        assert_eq!(find_cycle(&DiGraph::path(5)), None);
        assert_eq!(find_cycle(&DiGraph::out_star(4)), None);
        assert_eq!(find_cycle(&DiGraph::new(3)), None);
    }

    #[test]
    fn find_cycle_returns_closed_walk() {
        let g = DiGraph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 1), (3, 4)]).unwrap();
        let cycle = find_cycle(&g).expect("cycle exists");
        assert_eq!(cycle.first(), cycle.last());
        assert!(cycle.len() >= 3);
        for w in cycle.windows(2) {
            assert!(
                g.has_edge(w[0], w[1]),
                "cycle edge {} -> {} missing",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn find_cycle_detects_two_cycle() {
        let g = DiGraph::from_edges(2, [(0, 1), (1, 0)]).unwrap();
        let cycle = find_cycle(&g).unwrap();
        assert_eq!(cycle.len(), 3); // v0, v1, v0
    }

    #[test]
    fn scc_count_matches_cycle_presence() {
        // A graph is acyclic iff every SCC is a singleton.
        let g = DiGraph::from_edges(6, [(0, 1), (1, 2), (2, 0), (3, 4)]).unwrap();
        let comps = strongly_connected_components(&g);
        let has_nontrivial = comps.iter().any(|c| c.len() > 1);
        assert_eq!(has_nontrivial, find_cycle(&g).is_some());
    }
}
