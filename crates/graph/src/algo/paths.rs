//! Shortest paths, hop matrices and diameter.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::{DiGraph, NodeId};

/// Outcome of a single-source shortest-path query.
#[derive(Debug, Clone, PartialEq)]
pub struct PathResult {
    /// `dist[v]` is the distance from the source to `v`, or `None` if `v`
    /// is unreachable.
    pub dist: Vec<Option<f64>>,
    /// `parent[v]` is the predecessor of `v` on a shortest path, `None` for
    /// the source and unreachable vertices.
    pub parent: Vec<Option<NodeId>>,
}

impl PathResult {
    /// Reconstructs the vertex sequence from the source to `goal`
    /// (inclusive), or `None` if `goal` is unreachable.
    pub fn path_to(&self, goal: NodeId) -> Option<Vec<NodeId>> {
        self.dist[goal.index()]?;
        let mut path = vec![goal];
        let mut cur = goal;
        while let Some(p) = self.parent[cur.index()] {
            path.push(p);
            cur = p;
        }
        path.reverse();
        Some(path)
    }
}

/// Unit-weight BFS distances (hop counts) from `src` along directed edges.
///
/// # Panics
///
/// Panics if `src` is out of bounds.
pub fn bfs_distances(g: &DiGraph, src: NodeId) -> Vec<Option<usize>> {
    assert!(src.index() < g.node_count(), "source out of bounds");
    let mut dist = vec![None; g.node_count()];
    dist[src.index()] = Some(0);
    let mut queue = std::collections::VecDeque::from([src]);
    while let Some(u) = queue.pop_front() {
        let du = dist[u.index()].expect("queued vertices have distances");
        for v in g.successors(u) {
            if dist[v.index()].is_none() {
                dist[v.index()] = Some(du + 1);
                queue.push_back(v);
            }
        }
    }
    dist
}

/// Dijkstra shortest paths from `src` with per-edge weights given by
/// `weight(src, dst)`.
///
/// # Panics
///
/// Panics if `src` is out of bounds or any traversed weight is negative or
/// NaN.
pub fn dijkstra<F>(g: &DiGraph, src: NodeId, mut weight: F) -> PathResult
where
    F: FnMut(NodeId, NodeId) -> f64,
{
    assert!(src.index() < g.node_count(), "source out of bounds");
    let n = g.node_count();
    let mut dist: Vec<Option<f64>> = vec![None; n];
    let mut parent: Vec<Option<NodeId>> = vec![None; n];
    let mut heap: BinaryHeap<Reverse<(OrderedF64, usize)>> = BinaryHeap::new();
    dist[src.index()] = Some(0.0);
    heap.push(Reverse((OrderedF64(0.0), src.index())));
    while let Some(Reverse((OrderedF64(d), u))) = heap.pop() {
        if dist[u].is_none_or(|best| d > best) {
            continue;
        }
        for v in g.successors(NodeId(u)) {
            let w = weight(NodeId(u), v);
            assert!(w >= 0.0, "dijkstra requires non-negative weights, got {w}");
            let nd = d + w;
            if dist[v.index()].is_none_or(|best| nd < best) {
                dist[v.index()] = Some(nd);
                parent[v.index()] = Some(NodeId(u));
                heap.push(Reverse((OrderedF64(nd), v.index())));
            }
        }
    }
    PathResult { dist, parent }
}

/// Shortest hop path from `src` to `dst`, or `None` if unreachable.
pub fn shortest_path(g: &DiGraph, src: NodeId, dst: NodeId) -> Option<Vec<NodeId>> {
    let mut parent: Vec<Option<NodeId>> = vec![None; g.node_count()];
    let mut seen = vec![false; g.node_count()];
    seen[src.index()] = true;
    let mut queue = std::collections::VecDeque::from([src]);
    while let Some(u) = queue.pop_front() {
        if u == dst {
            let mut path = vec![dst];
            let mut cur = dst;
            while let Some(p) = parent[cur.index()] {
                path.push(p);
                cur = p;
            }
            path.reverse();
            return Some(path);
        }
        for v in g.successors(u) {
            if !seen[v.index()] {
                seen[v.index()] = true;
                parent[v.index()] = Some(u);
                queue.push_back(v);
            }
        }
    }
    None
}

/// All-pairs hop-count matrix; `matrix[u][v]` is `None` when `v` is not
/// reachable from `u`.
pub fn hop_matrix(g: &DiGraph) -> Vec<Vec<Option<usize>>> {
    g.nodes().map(|u| bfs_distances(g, u)).collect()
}

/// Directed diameter: the largest finite hop distance between any ordered
/// vertex pair, or `None` if the graph has fewer than two vertices or some
/// pair is mutually unreachable (infinite diameter).
pub fn diameter(g: &DiGraph) -> Option<usize> {
    if g.node_count() < 2 {
        return None;
    }
    let mut best = 0;
    for u in g.nodes() {
        let dist = bfs_distances(g, u);
        for v in g.nodes() {
            if u == v {
                continue;
            }
            match dist[v.index()] {
                Some(d) => best = best.max(d),
                None => return None,
            }
        }
    }
    Some(best)
}

/// Total-order wrapper for finite `f64` used inside the Dijkstra heap.
#[derive(Debug, Clone, Copy, PartialEq)]
struct OrderedF64(f64);

impl Eq for OrderedF64 {}

impl PartialOrd for OrderedF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrderedF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0
            .partial_cmp(&other.0)
            .expect("path weights must not be NaN")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bfs_on_cycle() {
        let g = DiGraph::cycle(4);
        let d = bfs_distances(&g, NodeId(0));
        assert_eq!(d, vec![Some(0), Some(1), Some(2), Some(3)]);
    }

    #[test]
    fn bfs_unreachable_is_none() {
        let g = DiGraph::path(3); // 0 -> 1 -> 2
        let d = bfs_distances(&g, NodeId(2));
        assert_eq!(d, vec![None, None, Some(0)]);
    }

    #[test]
    fn dijkstra_prefers_cheap_detour() {
        // 0 -> 1 (10), 0 -> 2 (1), 2 -> 1 (1)
        let g = DiGraph::from_edges(3, [(0, 1), (0, 2), (2, 1)]).unwrap();
        let w = |a: NodeId, b: NodeId| match (a.index(), b.index()) {
            (0, 1) => 10.0,
            _ => 1.0,
        };
        let r = dijkstra(&g, NodeId(0), w);
        assert_eq!(r.dist[1], Some(2.0));
        assert_eq!(
            r.path_to(NodeId(1)).unwrap(),
            vec![NodeId(0), NodeId(2), NodeId(1)]
        );
    }

    #[test]
    fn dijkstra_unreachable() {
        let g = DiGraph::from_edges(3, [(0, 1)]).unwrap();
        let r = dijkstra(&g, NodeId(0), |_, _| 1.0);
        assert_eq!(r.dist[2], None);
        assert_eq!(r.path_to(NodeId(2)), None);
    }

    #[test]
    fn shortest_path_on_mesh_like_graph() {
        // 2x2 bidirectional grid: 0-1 / 2-3.
        let mut g = DiGraph::new(4);
        for (a, b) in [(0, 1), (0, 2), (1, 3), (2, 3)] {
            g.add_edge(NodeId(a), NodeId(b));
            g.add_edge(NodeId(b), NodeId(a));
        }
        let p = shortest_path(&g, NodeId(0), NodeId(3)).unwrap();
        assert_eq!(p.len(), 3); // two hops
        assert_eq!(p[0], NodeId(0));
        assert_eq!(p[2], NodeId(3));
        assert_eq!(
            shortest_path(&g, NodeId(1), NodeId(1)).unwrap(),
            vec![NodeId(1)]
        );
    }

    #[test]
    fn hop_matrix_matches_bfs() {
        let g = DiGraph::cycle(5);
        let m = hop_matrix(&g);
        assert_eq!(m[2][4], Some(2));
        assert_eq!(m[4][2], Some(3));
    }

    #[test]
    fn diameter_of_cycle_is_n_minus_1() {
        assert_eq!(diameter(&DiGraph::cycle(6)), Some(5));
        assert_eq!(diameter(&DiGraph::complete(6)), Some(1));
    }

    #[test]
    fn diameter_of_disconnected_is_none() {
        assert_eq!(diameter(&DiGraph::path(3)), None); // not strongly connected
        assert_eq!(diameter(&DiGraph::new(1)), None);
    }
}
