//! Balanced bipartitioning and bisection bandwidth.
//!
//! Section 4.2 of the paper checks wiring feasibility "by comparing the
//! bisection bandwidth of the customized architecture with the maximum
//! bisection bandwidth the particular technology provides". The bisection
//! bandwidth of a topology is the minimum total capacity of edges crossing
//! any balanced two-way vertex partition. Exact bisection is NP-hard; we
//! compute it exactly for small graphs (≤ ~20 vertices, exhaustive over
//! balanced subsets) and fall back to multi-start Kernighan–Lin for larger
//! ones, which is the standard EDA practice.

// Index loops below walk several parallel arrays; indexing is clearer.
#![allow(clippy::needless_range_loop)]

use crate::{DiGraph, NodeId};

/// A two-way partition of the vertex set.
#[derive(Debug, Clone, PartialEq)]
pub struct Bipartition {
    /// Vertices on side A (sorted).
    pub side_a: Vec<NodeId>,
    /// Vertices on side B (sorted).
    pub side_b: Vec<NodeId>,
    /// Total weight of directed edges crossing the cut (both directions).
    pub cut_weight: f64,
}

impl Bipartition {
    fn from_mask(g: &DiGraph, in_a: &[bool], weight: &impl Fn(NodeId, NodeId) -> f64) -> Self {
        let mut side_a = Vec::new();
        let mut side_b = Vec::new();
        for v in g.nodes() {
            if in_a[v.index()] {
                side_a.push(v);
            } else {
                side_b.push(v);
            }
        }
        let cut_weight = cut_weight(g, in_a, weight);
        Bipartition {
            side_a,
            side_b,
            cut_weight,
        }
    }
}

fn cut_weight(g: &DiGraph, in_a: &[bool], weight: &impl Fn(NodeId, NodeId) -> f64) -> f64 {
    g.edges()
        .filter(|e| in_a[e.src.index()] != in_a[e.dst.index()])
        .map(|e| weight(e.src, e.dst))
        .sum()
}

/// Exact minimum balanced bisection by exhaustive subset enumeration.
///
/// Sides have sizes `⌈n/2⌉` and `⌊n/2⌋`. Only call for small `n`;
/// [`bisection_bandwidth`] dispatches automatically.
fn exact_bisection(g: &DiGraph, weight: &impl Fn(NodeId, NodeId) -> f64) -> Bipartition {
    let n = g.node_count();
    assert!(n >= 2, "bisection needs at least two vertices");
    let half = n / 2;
    // Vertex 0 is fixed on side A (halves the symmetric search space), so
    // a free-vertex mask of popcount k puts k + 1 vertices on side A.
    // Enumerate only the balanced popcount classes with Gosper's hack
    // instead of scanning all 2^(n-1) masks, and test each edge against
    // the mask directly — no per-candidate allocation.
    let edges: Vec<(u32, u32, f64)> = g
        .edges()
        .map(|e| {
            (
                e.src.index() as u32,
                e.dst.index() as u32,
                weight(e.src, e.dst),
            )
        })
        .collect();
    let cut_of = |mask: u64| -> f64 {
        // Bit v of `full` = vertex v on side A.
        let full = (mask << 1) | 1;
        let mut w = 0.0;
        for &(src, dst, ew) in &edges {
            if ((full >> src) ^ (full >> dst)) & 1 != 0 {
                w += ew;
            }
        }
        w
    };
    let mut classes = [half - 1, n - half - 1];
    classes.sort_unstable();
    let limit = 1u64 << (n - 1);
    // Ties keep the numerically smallest mask — exactly what the old
    // ascending full scan's strict `<` produced.
    let mut best: Option<(f64, u64)> = None;
    let consider = |mask: u64, best: &mut Option<(f64, u64)>| {
        let w = cut_of(mask);
        if best.is_none_or(|(bw, bm)| w < bw || (w == bw && mask < bm)) {
            *best = Some((w, mask));
        }
    };
    for (i, &k) in classes.iter().enumerate() {
        if i > 0 && classes[i] == classes[i - 1] {
            continue; // n even: both balanced class sizes coincide.
        }
        if k == 0 {
            consider(0, &mut best);
            continue;
        }
        let mut mask = (1u64 << k) - 1;
        while mask < limit {
            consider(mask, &mut best);
            // Gosper's hack: next mask with the same popcount.
            let c = mask & mask.wrapping_neg();
            let r = mask + c;
            mask = (((r ^ mask) >> 2) / c) | r;
        }
    }
    let (_, mask) = best.expect("at least one balanced partition exists");
    let mut in_a = vec![false; n];
    in_a[0] = true;
    for v in 1..n {
        if mask & (1 << (v - 1)) != 0 {
            in_a[v] = true;
        }
    }
    Bipartition::from_mask(g, &in_a, weight)
}

/// One pass of Kernighan–Lin refinement over an initial balanced partition.
///
/// Returns the best partition found. `weight` gives the capacity of each
/// directed edge; the cut counts both directions.
pub fn kernighan_lin(
    g: &DiGraph,
    initial_in_a: &[bool],
    weight: impl Fn(NodeId, NodeId) -> f64,
) -> Bipartition {
    let n = g.node_count();
    assert_eq!(
        initial_in_a.len(),
        n,
        "partition mask must cover all vertices"
    );
    let mut in_a = initial_in_a.to_vec();

    // Undirected weight between u and v (sum of both directions).
    let pair_w = |u: NodeId, v: NodeId| -> f64 {
        let mut w = 0.0;
        if g.has_edge(u, v) {
            w += weight(u, v);
        }
        if g.has_edge(v, u) {
            w += weight(v, u);
        }
        w
    };

    loop {
        // D[v] = external cost - internal cost.
        let d = |in_a: &[bool], v: NodeId| -> f64 {
            let mut ext = 0.0;
            let mut int = 0.0;
            for u in g.nodes() {
                if u == v {
                    continue;
                }
                let w = pair_w(v, u);
                if w == 0.0 {
                    continue;
                }
                if in_a[u.index()] == in_a[v.index()] {
                    int += w;
                } else {
                    ext += w;
                }
            }
            ext - int
        };

        let mut locked = vec![false; n];
        let mut gains: Vec<f64> = Vec::new();
        let mut swaps: Vec<(usize, usize)> = Vec::new();
        let mut work = in_a.clone();

        let pairs = n / 2;
        for _ in 0..pairs {
            let mut best: Option<(f64, usize, usize)> = None;
            for a in 0..n {
                if locked[a] || !work[a] {
                    continue;
                }
                for b in 0..n {
                    if locked[b] || work[b] {
                        continue;
                    }
                    let gain = d(&work, NodeId(a)) + d(&work, NodeId(b))
                        - 2.0 * pair_w(NodeId(a), NodeId(b));
                    if best.is_none_or(|(bg, _, _)| gain > bg) {
                        best = Some((gain, a, b));
                    }
                }
            }
            let Some((gain, a, b)) = best else { break };
            work.swap(a, b);
            locked[a] = true;
            locked[b] = true;
            gains.push(gain);
            swaps.push((a, b));
        }

        // Find the prefix of swaps with the maximum cumulative gain.
        let mut best_k = 0;
        let mut best_sum = 0.0;
        let mut sum = 0.0;
        for (k, &gain) in gains.iter().enumerate() {
            sum += gain;
            if sum > best_sum + 1e-12 {
                best_sum = sum;
                best_k = k + 1;
            }
        }
        if best_k == 0 {
            break;
        }
        for &(a, b) in &swaps[..best_k] {
            in_a.swap(a, b);
        }
    }
    Bipartition::from_mask(g, &in_a, &weight)
}

/// Minimum balanced-cut capacity of the topology: exact for `n <= 20`,
/// multi-start Kernighan–Lin otherwise.
///
/// `weight(u, v)` is the capacity of the directed link `u -> v`; use
/// `|_, _| 1.0` to count links.
///
/// # Panics
///
/// Panics if the graph has fewer than two vertices.
pub fn bisection_bandwidth(g: &DiGraph, weight: impl Fn(NodeId, NodeId) -> f64) -> Bipartition {
    let n = g.node_count();
    assert!(n >= 2, "bisection bandwidth needs at least two vertices");
    if n <= 20 {
        return exact_bisection(g, &weight);
    }
    // Multi-start KL with deterministic rotations of an alternating seed.
    let mut best: Option<Bipartition> = None;
    for start in 0..8usize {
        let in_a: Vec<bool> = (0..n)
            .map(|v| (v + start) % 2 == 0 || v % (start + 2) == 0)
            .collect();
        // Rebalance the seed mask to exactly n/2 on side A.
        let mut mask = in_a;
        let half = n / 2;
        let mut count = mask.iter().filter(|&&x| x).count();
        for v in 0..n {
            if count == half {
                break;
            }
            if count > half && mask[v] {
                mask[v] = false;
                count -= 1;
            } else if count < half && !mask[v] {
                mask[v] = true;
                count += 1;
            }
        }
        let p = kernighan_lin(g, &mask, &weight);
        if best.as_ref().is_none_or(|b| p.cut_weight < b.cut_weight) {
            best = Some(p);
        }
    }
    best.expect("at least one start")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit(_: NodeId, _: NodeId) -> f64 {
        1.0
    }

    /// Bidirectional ring on n vertices.
    fn ring(n: usize) -> DiGraph {
        let mut g = DiGraph::new(n);
        for v in 0..n {
            g.add_edge(NodeId(v), NodeId((v + 1) % n));
            g.add_edge(NodeId((v + 1) % n), NodeId(v));
        }
        g
    }

    /// Bidirectional w x h mesh.
    fn mesh(w: usize, h: usize) -> DiGraph {
        let mut g = DiGraph::new(w * h);
        let id = |x: usize, y: usize| NodeId(y * w + x);
        for y in 0..h {
            for x in 0..w {
                if x + 1 < w {
                    g.add_edge(id(x, y), id(x + 1, y));
                    g.add_edge(id(x + 1, y), id(x, y));
                }
                if y + 1 < h {
                    g.add_edge(id(x, y), id(x, y + 1));
                    g.add_edge(id(x, y + 1), id(x, y));
                }
            }
        }
        g
    }

    #[test]
    fn ring_bisection_is_four_directed_edges() {
        // Cutting a bidirectional ring anywhere severs 2 undirected = 4
        // directed edges.
        let p = bisection_bandwidth(&ring(8), unit);
        assert_eq!(p.cut_weight, 4.0);
        assert_eq!(p.side_a.len(), 4);
        assert_eq!(p.side_b.len(), 4);
    }

    #[test]
    fn mesh_4x4_bisection_is_eight_directed_edges() {
        // The classic result: bisection width of a 4x4 mesh is 4 links =
        // 8 directed edges.
        let p = bisection_bandwidth(&mesh(4, 4), unit);
        assert_eq!(p.cut_weight, 8.0);
    }

    #[test]
    fn two_cliques_with_bridge() {
        // Two K4 cliques joined by one bidirectional bridge: min cut = 2.
        let mut g = DiGraph::new(8);
        for base in [0, 4] {
            for i in 0..4 {
                for j in 0..4 {
                    if i != j {
                        g.add_edge(NodeId(base + i), NodeId(base + j));
                    }
                }
            }
        }
        g.add_edge(NodeId(0), NodeId(4));
        g.add_edge(NodeId(4), NodeId(0));
        let p = bisection_bandwidth(&g, unit);
        assert_eq!(p.cut_weight, 2.0);
        let a: Vec<usize> = p.side_a.iter().map(|v| v.index()).collect();
        assert!(a == vec![0, 1, 2, 3] || a == vec![4, 5, 6, 7]);
    }

    #[test]
    fn weighted_cut_prefers_light_edges() {
        // Square 0-1-2-3 with one heavy pair: partition avoids cutting it.
        let g = DiGraph::from_edges(
            4,
            [
                (0, 1),
                (1, 0),
                (1, 2),
                (2, 1),
                (2, 3),
                (3, 2),
                (3, 0),
                (0, 3),
            ],
        )
        .unwrap();
        let w = |a: NodeId, b: NodeId| {
            if (a.index().min(b.index()), a.index().max(b.index())) == (0, 1) {
                100.0
            } else {
                1.0
            }
        };
        let p = bisection_bandwidth(&g, w);
        // Optimal: {0,1} vs {2,3}: cuts edges 1-2 and 3-0 = weight 4.
        assert_eq!(p.cut_weight, 4.0);
    }

    #[test]
    fn odd_vertex_count_is_handled() {
        let p = bisection_bandwidth(&ring(5), unit);
        assert_eq!(p.side_a.len() + p.side_b.len(), 5);
        assert!((p.side_a.len() as isize - p.side_b.len() as isize).abs() <= 1);
        assert_eq!(p.cut_weight, 4.0);
    }

    #[test]
    fn kernighan_lin_improves_bad_seed() {
        // Two triangles bridged once; seed splits both triangles.
        let mut g = DiGraph::new(6);
        for (a, b) in [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)] {
            g.add_edge(NodeId(a), NodeId(b));
            g.add_edge(NodeId(b), NodeId(a));
        }
        g.add_edge(NodeId(0), NodeId(3));
        g.add_edge(NodeId(3), NodeId(0));
        let seed = [true, false, true, false, true, false];
        let p = kernighan_lin(&g, &seed, unit);
        assert_eq!(p.cut_weight, 2.0);
    }

    #[test]
    fn large_graph_uses_heuristic_and_stays_reasonable() {
        let g = mesh(5, 5); // 25 vertices -> heuristic path
        let p = bisection_bandwidth(&g, unit);
        // True bisection of a 5x5 mesh is 5 links = 10 directed edges; the
        // heuristic should be close.
        assert!(p.cut_weight <= 14.0, "cut {} too large", p.cut_weight);
        assert!((p.side_a.len() as isize - 12).abs() <= 1);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn single_vertex_panics() {
        bisection_bandwidth(&DiGraph::new(1), unit);
    }
}
