//! Dense directed graph over a fixed vertex set.

use crate::{bitset::BitSet, GraphError, Result};

/// Identifier of a vertex in a [`DiGraph`].
///
/// Vertices are dense indices `0..n`. The newtype prevents accidentally
/// mixing vertex ids with other integer quantities (volumes, hop counts, …).
///
/// # Examples
///
/// ```
/// use noc_graph::NodeId;
/// let v = NodeId(3);
/// assert_eq!(v.index(), 3);
/// assert_eq!(v.to_string(), "3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(pub usize);

impl NodeId {
    /// Returns the underlying dense index.
    pub fn index(self) -> usize {
        self.0
    }
}

impl From<usize> for NodeId {
    fn from(i: usize) -> Self {
        NodeId(i)
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

/// A directed edge `(src, dst)`.
///
/// # Examples
///
/// ```
/// use noc_graph::{Edge, NodeId};
/// let e = Edge::new(NodeId(0), NodeId(1));
/// assert_eq!(e.reversed(), Edge::new(NodeId(1), NodeId(0)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Edge {
    /// Source vertex.
    pub src: NodeId,
    /// Destination vertex.
    pub dst: NodeId,
}

impl Edge {
    /// Creates an edge from `src` to `dst`.
    pub fn new(src: NodeId, dst: NodeId) -> Self {
        Edge { src, dst }
    }

    /// Returns the edge with endpoints swapped.
    pub fn reversed(self) -> Self {
        Edge::new(self.dst, self.src)
    }
}

impl From<(usize, usize)> for Edge {
    fn from((s, d): (usize, usize)) -> Self {
        Edge::new(NodeId(s), NodeId(d))
    }
}

impl std::fmt::Display for Edge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} -> {}", self.src, self.dst)
    }
}

/// A simple directed graph (no self loops, no multi-edges) over a fixed set
/// of `n` vertices, stored densely as per-vertex successor/predecessor bit
/// sets.
///
/// This is the representation the DATE'05 decomposition algorithm operates
/// on: graph *difference* (Definition 2 of the paper) removes edges but keeps
/// the vertex set intact, so the vertex set is immutable after construction.
///
/// # Examples
///
/// ```
/// use noc_graph::{DiGraph, NodeId};
///
/// let mut g = DiGraph::new(3);
/// g.add_edge(NodeId(0), NodeId(1));
/// g.add_edge(NodeId(1), NodeId(2));
/// assert_eq!(g.out_degree(NodeId(1)), 1);
/// assert_eq!(g.in_degree(NodeId(1)), 1);
/// assert_eq!(g.edges().count(), 2);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct DiGraph {
    n: usize,
    succ: Vec<BitSet>,
    pred: Vec<BitSet>,
    m: usize,
}

impl DiGraph {
    /// Creates an edgeless graph with `n` vertices.
    pub fn new(n: usize) -> Self {
        DiGraph {
            n,
            succ: (0..n).map(|_| BitSet::new(n)).collect(),
            pred: (0..n).map(|_| BitSet::new(n)).collect(),
            m: 0,
        }
    }

    /// Builds a graph of order `n` from an edge list.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfBounds`] for endpoints `>= n` and
    /// [`GraphError::SelfLoop`] for edges `(v, v)`. Duplicate edges are
    /// silently merged.
    ///
    /// # Examples
    ///
    /// ```
    /// # fn main() -> Result<(), noc_graph::GraphError> {
    /// use noc_graph::DiGraph;
    /// let g = DiGraph::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)])?;
    /// assert_eq!(g.edge_count(), 4);
    /// # Ok(())
    /// # }
    /// ```
    pub fn from_edges<I>(n: usize, edges: I) -> Result<Self>
    where
        I: IntoIterator,
        I::Item: Into<Edge>,
    {
        let mut g = DiGraph::new(n);
        for e in edges {
            let e = e.into();
            g.try_add_edge(e.src, e.dst)?;
        }
        Ok(g)
    }

    /// The complete digraph `K_n`: every ordered pair of distinct vertices is
    /// an edge. This is the representation graph of *gossiping* among `n`
    /// nodes (Figure 1 of the paper).
    pub fn complete(n: usize) -> Self {
        let mut g = DiGraph::new(n);
        for u in 0..n {
            for v in 0..n {
                if u != v {
                    g.add_edge(NodeId(u), NodeId(v));
                }
            }
        }
        g
    }

    /// The directed cycle `0 -> 1 -> … -> n-1 -> 0`.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` (a directed cycle needs at least two vertices).
    pub fn cycle(n: usize) -> Self {
        assert!(n >= 2, "a directed cycle needs at least 2 vertices");
        let mut g = DiGraph::new(n);
        for u in 0..n {
            g.add_edge(NodeId(u), NodeId((u + 1) % n));
        }
        g
    }

    /// The directed path `0 -> 1 -> … -> n-1`.
    pub fn path(n: usize) -> Self {
        let mut g = DiGraph::new(n);
        for u in 1..n {
            g.add_edge(NodeId(u - 1), NodeId(u));
        }
        g
    }

    /// The out-star: vertex `0` has an edge to every other vertex. This is
    /// the representation graph of a *broadcast* from one node to `n - 1`
    /// nodes (Figure 1 of the paper).
    pub fn out_star(n: usize) -> Self {
        let mut g = DiGraph::new(n);
        for v in 1..n {
            g.add_edge(NodeId(0), NodeId(v));
        }
        g
    }

    /// Number of vertices.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Number of directed edges.
    pub fn edge_count(&self) -> usize {
        self.m
    }

    /// Returns `true` if the graph has no edges.
    pub fn is_edgeless(&self) -> bool {
        self.m == 0
    }

    /// Iterates over all vertices.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.n).map(NodeId)
    }

    /// Adds the edge `src -> dst`, returning `true` if it was new.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of bounds or `src == dst`; use
    /// [`DiGraph::try_add_edge`] for a fallible variant.
    pub fn add_edge(&mut self, src: NodeId, dst: NodeId) -> bool {
        self.try_add_edge(src, dst)
            .unwrap_or_else(|e| panic!("add_edge: {e}"))
    }

    /// Adds the edge `src -> dst`, returning `true` if it was new.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfBounds`] or [`GraphError::SelfLoop`].
    pub fn try_add_edge(&mut self, src: NodeId, dst: NodeId) -> Result<bool> {
        self.check_node(src)?;
        self.check_node(dst)?;
        if src == dst {
            return Err(GraphError::SelfLoop(src));
        }
        let added = self.succ[src.0].insert(dst.0);
        if added {
            self.pred[dst.0].insert(src.0);
            self.m += 1;
        }
        Ok(added)
    }

    /// Removes the edge `src -> dst`, returning `true` if it existed.
    pub fn remove_edge(&mut self, src: NodeId, dst: NodeId) -> bool {
        if src.0 >= self.n || dst.0 >= self.n {
            return false;
        }
        let removed = self.succ[src.0].remove(dst.0);
        if removed {
            self.pred[dst.0].remove(src.0);
            self.m -= 1;
        }
        removed
    }

    /// Returns `true` if `src -> dst` is an edge.
    pub fn has_edge(&self, src: NodeId, dst: NodeId) -> bool {
        src.0 < self.n && self.succ[src.0].contains(dst.0)
    }

    /// Out-degree of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of bounds.
    pub fn out_degree(&self, v: NodeId) -> usize {
        self.succ[v.0].len()
    }

    /// In-degree of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of bounds.
    pub fn in_degree(&self, v: NodeId) -> usize {
        self.pred[v.0].len()
    }

    /// Total degree (in + out) of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of bounds.
    pub fn degree(&self, v: NodeId) -> usize {
        self.out_degree(v) + self.in_degree(v)
    }

    /// Iterates over the successors of `v` in ascending order.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of bounds.
    pub fn successors(&self, v: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.succ[v.0].iter().map(NodeId)
    }

    /// Iterates over the predecessors of `v` in ascending order.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of bounds.
    pub fn predecessors(&self, v: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.pred[v.0].iter().map(NodeId)
    }

    /// Successor set of `v` as a bit set (used by the VF2 engine).
    pub(crate) fn succ_set(&self, v: NodeId) -> &BitSet {
        &self.succ[v.0]
    }

    /// Predecessor set of `v` as a bit set (used by the VF2 engine).
    pub(crate) fn pred_set(&self, v: NodeId) -> &BitSet {
        &self.pred[v.0]
    }

    /// Iterates over all edges in lexicographic `(src, dst)` order.
    pub fn edges(&self) -> impl Iterator<Item = Edge> + '_ {
        (0..self.n).flat_map(move |u| {
            self.succ[u]
                .iter()
                .map(move |v| Edge::new(NodeId(u), NodeId(v)))
        })
    }

    /// Collects all edges into a sorted vector (a cheap canonical form).
    pub fn edge_vec(&self) -> Vec<Edge> {
        self.edges().collect()
    }

    /// The edge set as a dense [`BitSet`]: edge `(u, v)` occupies bit
    /// `u * n + v`. Graphs over the same vertex set have equal bitsets iff
    /// they have equal edge sets.
    pub fn edge_bitset(&self) -> BitSet {
        let mut set = BitSet::new(self.n * self.n);
        for u in 0..self.n {
            for v in self.succ[u].iter() {
                set.insert(u * self.n + v);
            }
        }
        set
    }

    /// A hashable, capacity-independent key of the edge set (the vertex
    /// count must be held fixed by the caller, as the decomposition's
    /// remaining graphs do). Used to key per-remaining-graph caches.
    pub fn edge_key(&self) -> crate::bitset::BitSetKey {
        self.edge_bitset().stable_key()
    }

    /// Returns `true` if every edge of `other` is also an edge of `self`.
    ///
    /// Both graphs must have the same order; differing orders yield `false`.
    pub fn contains_subgraph(&self, other: &DiGraph) -> bool {
        other.n == self.n && other.edges().all(|e| self.has_edge(e.src, e.dst))
    }

    /// Vertices with at least one incident edge.
    pub fn active_nodes(&self) -> Vec<NodeId> {
        self.nodes().filter(|&v| self.degree(v) > 0).collect()
    }

    /// Returns `true` if for every edge `u -> v` the reverse edge `v -> u`
    /// also exists (the graph is *symmetric*, i.e. effectively undirected).
    pub fn is_symmetric(&self) -> bool {
        self.edges().all(|e| self.has_edge(e.dst, e.src))
    }

    fn check_node(&self, v: NodeId) -> Result<()> {
        if v.0 >= self.n {
            Err(GraphError::NodeOutOfBounds {
                node: v,
                node_count: self.n,
            })
        } else {
            Ok(())
        }
    }
}

impl std::fmt::Debug for DiGraph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "DiGraph(n={}, m={}, edges=[", self.n, self.m)?;
        let mut first = true;
        for e in self.edges() {
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "{}", e)?;
            first = false;
        }
        write!(f, "])")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_graph_is_edgeless() {
        let g = DiGraph::new(5);
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.edge_count(), 0);
        assert!(g.is_edgeless());
        assert!(g.active_nodes().is_empty());
    }

    #[test]
    fn add_remove_edge_round_trip() {
        let mut g = DiGraph::new(3);
        assert!(g.add_edge(NodeId(0), NodeId(2)));
        assert!(!g.add_edge(NodeId(0), NodeId(2))); // duplicate
        assert_eq!(g.edge_count(), 1);
        assert!(g.has_edge(NodeId(0), NodeId(2)));
        assert!(!g.has_edge(NodeId(2), NodeId(0)));
        assert!(g.remove_edge(NodeId(0), NodeId(2)));
        assert!(!g.remove_edge(NodeId(0), NodeId(2)));
        assert!(g.is_edgeless());
    }

    #[test]
    fn self_loop_rejected() {
        let mut g = DiGraph::new(2);
        assert_eq!(
            g.try_add_edge(NodeId(1), NodeId(1)),
            Err(GraphError::SelfLoop(NodeId(1)))
        );
    }

    #[test]
    fn out_of_bounds_rejected() {
        let mut g = DiGraph::new(2);
        assert!(matches!(
            g.try_add_edge(NodeId(0), NodeId(5)),
            Err(GraphError::NodeOutOfBounds { .. })
        ));
    }

    #[test]
    fn complete_graph_has_n_times_n_minus_1_edges() {
        for n in 1..8 {
            let g = DiGraph::complete(n);
            assert_eq!(g.edge_count(), n * n.saturating_sub(1));
            assert!(g.is_symmetric());
        }
    }

    #[test]
    fn cycle_graph_structure() {
        let g = DiGraph::cycle(4);
        assert_eq!(g.edge_count(), 4);
        assert!(g.has_edge(NodeId(3), NodeId(0)));
        for v in g.nodes() {
            assert_eq!(g.out_degree(v), 1);
            assert_eq!(g.in_degree(v), 1);
        }
        assert!(!g.is_symmetric());
    }

    #[test]
    fn path_graph_structure() {
        let g = DiGraph::path(4);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.out_degree(NodeId(3)), 0);
        assert_eq!(g.in_degree(NodeId(0)), 0);
    }

    #[test]
    fn out_star_structure() {
        let g = DiGraph::out_star(5);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.out_degree(NodeId(0)), 4);
        for v in 1..5 {
            assert_eq!(g.in_degree(NodeId(v)), 1);
            assert_eq!(g.out_degree(NodeId(v)), 0);
        }
    }

    #[test]
    fn degenerate_small_graphs() {
        assert_eq!(DiGraph::complete(0).edge_count(), 0);
        assert_eq!(DiGraph::complete(1).edge_count(), 0);
        assert_eq!(DiGraph::path(0).edge_count(), 0);
        assert_eq!(DiGraph::path(1).edge_count(), 0);
        assert_eq!(DiGraph::out_star(1).edge_count(), 0);
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn cycle_of_one_panics() {
        DiGraph::cycle(1);
    }

    #[test]
    fn edges_iterate_in_lexicographic_order() {
        let g = DiGraph::from_edges(3, [(2, 0), (0, 2), (0, 1), (1, 2)]).unwrap();
        let es: Vec<(usize, usize)> = g.edges().map(|e| (e.src.0, e.dst.0)).collect();
        assert_eq!(es, vec![(0, 1), (0, 2), (1, 2), (2, 0)]);
    }

    #[test]
    fn contains_subgraph_checks_edges() {
        let g = DiGraph::complete(4);
        let c = DiGraph::cycle(4);
        assert!(g.contains_subgraph(&c));
        assert!(!c.contains_subgraph(&g));
        let other_order = DiGraph::new(3);
        assert!(!g.contains_subgraph(&other_order));
    }

    #[test]
    fn neighbors_are_sorted() {
        let g = DiGraph::from_edges(5, [(2, 4), (2, 0), (2, 3)]).unwrap();
        let succ: Vec<usize> = g.successors(NodeId(2)).map(NodeId::index).collect();
        assert_eq!(succ, vec![0, 3, 4]);
        let pred: Vec<usize> = g.predecessors(NodeId(4)).map(NodeId::index).collect();
        assert_eq!(pred, vec![2]);
    }

    #[test]
    fn clone_and_eq() {
        let g = DiGraph::cycle(5);
        let h = g.clone();
        assert_eq!(g, h);
        let mut k = h.clone();
        k.remove_edge(NodeId(0), NodeId(1));
        assert_ne!(g, k);
    }

    #[test]
    fn debug_output_lists_edges() {
        let g = DiGraph::from_edges(2, [(0, 1)]).unwrap();
        assert_eq!(format!("{g:?}"), "DiGraph(n=2, m=1, edges=[0 -> 1])");
    }

    #[test]
    fn edge_display_and_reverse() {
        let e = Edge::from((1, 2));
        assert_eq!(e.to_string(), "1 -> 2");
        assert_eq!(e.reversed().to_string(), "2 -> 1");
    }
}
