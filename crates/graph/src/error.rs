//! Error type shared by the graph crate.

use crate::NodeId;

/// Errors produced by fallible graph operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GraphError {
    /// A vertex index was outside `0..node_count`.
    NodeOutOfBounds {
        /// The offending vertex.
        node: NodeId,
        /// Number of vertices in the graph.
        node_count: usize,
    },
    /// A self loop was requested but the graph forbids them.
    SelfLoop(NodeId),
    /// An edge that was required to exist is absent.
    MissingEdge(NodeId, NodeId),
    /// Graph subtraction was attempted between graphs of different orders.
    OrderMismatch {
        /// Vertices in the left operand.
        left: usize,
        /// Vertices in the right operand.
        right: usize,
    },
    /// The right operand of a difference has an edge the left lacks.
    NotASubgraph(NodeId, NodeId),
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::NodeOutOfBounds { node, node_count } => {
                write!(
                    f,
                    "vertex {node} out of bounds for graph of order {node_count}"
                )
            }
            GraphError::SelfLoop(n) => write!(f, "self loop on vertex {n} is not allowed"),
            GraphError::MissingEdge(u, v) => write!(f, "edge {u} -> {v} does not exist"),
            GraphError::OrderMismatch { left, right } => {
                write!(f, "graph orders differ: {left} vs {right}")
            }
            GraphError::NotASubgraph(u, v) => {
                write!(f, "subtrahend edge {u} -> {v} is absent from the minuend")
            }
        }
    }
}

impl std::error::Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = GraphError::NodeOutOfBounds {
            node: NodeId(7),
            node_count: 4,
        };
        assert_eq!(e.to_string(), "vertex 7 out of bounds for graph of order 4");
        assert_eq!(
            GraphError::MissingEdge(NodeId(1), NodeId(2)).to_string(),
            "edge 1 -> 2 does not exist"
        );
        assert_eq!(
            GraphError::OrderMismatch { left: 3, right: 5 }.to_string(),
            "graph orders differ: 3 vs 5"
        );
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GraphError>();
    }
}
