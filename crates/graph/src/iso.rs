//! VF2-style (sub)graph isomorphism for directed graphs.
//!
//! The DATE'05 decomposition algorithm repeatedly searches the application
//! graph for subgraphs isomorphic to a library *representation graph*
//! (Definition 3 / "matching" in the paper, which cites the VF2 algorithm of
//! Cordella et al. for this step). This module provides:
//!
//! * [`Vf2`] — a configurable matcher with monomorphism or induced
//!   semantics, deterministic enumeration order, optional deadline (the
//!   paper suggests terminating the isomorphism search "after a time-out
//!   period rather than trying all permutations") and match caps.
//! * [`Mapping`] — an injective assignment of pattern vertices to target
//!   vertices.
//! * [`distinct images`](Vf2::distinct_images) — matches deduplicated by
//!   their *image edge set*, which collapses pattern automorphisms (a gossip
//!   pattern `K_4` has 24 automorphisms but only one image per vertex
//!   subset, and the decomposition tree branches on images, not mappings).
//!
//! # Example
//!
//! Find all directed 3-cycles in a complete graph on 4 vertices:
//!
//! ```
//! use noc_graph::{iso::Vf2, DiGraph};
//!
//! let pattern = DiGraph::cycle(3);
//! let target = DiGraph::complete(4);
//! let images = Vf2::new(&pattern, &target).distinct_images();
//! // Each 3-subset of vertices hosts two directed triangles (cw + ccw).
//! assert_eq!(images.matches.len(), 8);
//! assert!(images.complete);
//! ```

use std::collections::BTreeSet;
use std::time::Instant;

use crate::{bitset::BitSet, DiGraph, Edge, NodeId};

/// Matching semantics for the VF2 engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Semantics {
    /// Every pattern edge must exist in the target image; extra target edges
    /// among image vertices are permitted. This is the semantics the
    /// decomposition algorithm needs: un-matched edges simply stay in the
    /// remaining graph.
    #[default]
    Monomorphism,
    /// Pattern edges and non-edges must both be mirrored in the image
    /// (classic induced subgraph isomorphism).
    Induced,
}

/// An injective map from pattern vertices to target vertices.
///
/// `mapping.target_of(u)` is the image of pattern vertex `u`. The paper
/// prints these as `Mapping: (1 1), (2 2), (3 5), (4 6)` — pattern vertex,
/// then image vertex, 1-based; [`Mapping::paper_format`] reproduces that.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Mapping(Vec<NodeId>);

impl Mapping {
    /// Creates a mapping from a dense vector: pattern vertex `i` maps to
    /// `images[i]`.
    ///
    /// # Panics
    ///
    /// Panics if `images` repeats a target vertex (mappings are injective).
    pub fn new(images: Vec<NodeId>) -> Self {
        let unique: BTreeSet<_> = images.iter().collect();
        assert_eq!(unique.len(), images.len(), "mapping must be injective");
        Mapping(images)
    }

    /// The image of pattern vertex `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range for the pattern.
    pub fn target_of(&self, u: NodeId) -> NodeId {
        self.0[u.index()]
    }

    /// Number of pattern vertices mapped.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Returns `true` for the empty mapping (empty pattern).
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Iterates `(pattern vertex, target vertex)` pairs in pattern order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.0.iter().enumerate().map(|(i, &v)| (NodeId(i), v))
    }

    /// The image vertices in pattern-vertex order.
    pub fn images(&self) -> &[NodeId] {
        &self.0
    }

    /// The image of the pattern's edge set under this mapping, sorted.
    ///
    /// Two mappings that differ only by a pattern automorphism produce the
    /// same image edge set; the decomposition deduplicates on this.
    pub fn image_edges(&self, pattern: &DiGraph) -> Vec<Edge> {
        let mut edges: Vec<Edge> = pattern
            .edges()
            .map(|e| Edge::new(self.target_of(e.src), self.target_of(e.dst)))
            .collect();
        edges.sort();
        edges
    }

    /// Formats the mapping the way the paper's tool prints it:
    /// `(1 1), (2 2), (3 5), (4 6)` with 1-based vertex numbers.
    pub fn paper_format(&self) -> String {
        self.0
            .iter()
            .enumerate()
            .map(|(i, v)| format!("({} {})", i + 1, v.index() + 1))
            .collect::<Vec<_>>()
            .join(", ")
    }
}

impl std::fmt::Display for Mapping {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.paper_format())
    }
}

/// Result of a match enumeration.
///
/// `complete` is `false` when the search stopped early (deadline expired or
/// the match cap was reached), in which case `matches` holds the results
/// found so far. The decomposition layer treats an incomplete enumeration as
/// "no further matchings from this branch", exactly as the paper's time-out
/// suggestion prescribes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SearchOutcome<T> {
    /// The matches found (deterministic order).
    pub matches: Vec<T>,
    /// `true` iff the search space was exhausted.
    pub complete: bool,
    /// Number of search-tree nodes expanded (a machine-independent cost
    /// metric, useful for the runtime figures).
    pub nodes_expanded: u64,
}

/// A VF2-style matcher from a `pattern` graph into a `target` graph.
///
/// Construction is cheap; each query walks the search tree with
/// most-constrained-first vertex ordering, bitset candidate intersection and
/// unmapped-neighbor-count look-ahead pruning (safe for both semantics).
#[derive(Debug, Clone)]
pub struct Vf2<'a> {
    pattern: &'a DiGraph,
    target: &'a DiGraph,
    semantics: Semantics,
    deadline: Option<Instant>,
    max_matches: Option<usize>,
}

impl<'a> Vf2<'a> {
    /// Creates a matcher with [`Semantics::Monomorphism`] and no limits.
    pub fn new(pattern: &'a DiGraph, target: &'a DiGraph) -> Self {
        Vf2 {
            pattern,
            target,
            semantics: Semantics::Monomorphism,
            deadline: None,
            max_matches: None,
        }
    }

    /// Sets the matching semantics.
    pub fn semantics(mut self, semantics: Semantics) -> Self {
        self.semantics = semantics;
        self
    }

    /// Aborts the search at `deadline`, marking the outcome incomplete.
    pub fn deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Stops after `max` matches, marking the outcome incomplete if more
    /// could exist.
    pub fn max_matches(mut self, max: usize) -> Self {
        self.max_matches = Some(max);
        self
    }

    /// Returns the first match in deterministic order, if any.
    pub fn find_first(&self) -> Option<Mapping> {
        let mut this = self.clone();
        this.max_matches = Some(1);
        this.run().matches.into_iter().next()
    }

    /// Returns `true` if at least one match exists (and the search finished
    /// or found one before any deadline).
    pub fn exists(&self) -> bool {
        self.find_first().is_some()
    }

    /// Enumerates every match (every injective mapping).
    pub fn find_all(&self) -> SearchOutcome<Mapping> {
        self.run()
    }

    /// Enumerates matches deduplicated by image edge set.
    ///
    /// Each distinct image is reported once, represented by the first
    /// mapping the engine's deterministic enumeration would produce for it;
    /// images are sorted by their edge lists so the output order is
    /// canonical.
    ///
    /// When the pattern has no isolated vertices, the search *breaks the
    /// pattern's symmetries up front* (Grochow–Kellis ordering conditions
    /// derived from the automorphism group) so each image is enumerated
    /// exactly once instead of `|Aut(pattern)|` times and deduplicated
    /// after the fact. With a [`max_matches`](Self::max_matches) cap the
    /// cap therefore bounds *images* on this path, rather than raw
    /// mappings — strictly more results for the same budget; truncated
    /// enumerations are marked incomplete either way.
    pub fn distinct_images(&self) -> SearchOutcome<Mapping> {
        if let Some(sym) = SymmetryBreak::for_pattern(self.pattern, self.deadline) {
            let raw = self.run_inner(Some(&sym));
            let order = matching_order(self.pattern);
            let mut keyed: Vec<(Vec<Edge>, Mapping)> = raw
                .matches
                .into_iter()
                .map(|m| {
                    let canon = sym.canonicalize(m, &order);
                    (canon.image_edges(self.pattern), canon)
                })
                .collect();
            keyed.sort_by(|a, b| a.0.cmp(&b.0));
            return SearchOutcome {
                matches: keyed.into_iter().map(|(_, m)| m).collect(),
                complete: raw.complete,
                nodes_expanded: raw.nodes_expanded,
            };
        }
        // Fallback (isolated pattern vertices, oversized patterns, or a
        // deadline during automorphism discovery): enumerate everything and
        // deduplicate. With isolated vertices an image edge set does not
        // pin the vertex image, so automorphism classes under-count and
        // only full dedup is exact.
        let raw = self.run_inner(None);
        let mut by_image: std::collections::BTreeMap<Vec<Edge>, Mapping> =
            std::collections::BTreeMap::new();
        for m in raw.matches {
            let key = m.image_edges(self.pattern);
            by_image.entry(key).or_insert(m);
        }
        SearchOutcome {
            matches: by_image.into_values().collect(),
            complete: raw.complete,
            nodes_expanded: raw.nodes_expanded,
        }
    }

    fn run(&self) -> SearchOutcome<Mapping> {
        self.run_inner(None)
    }

    fn run_inner(&self, sym: Option<&SymmetryBreak>) -> SearchOutcome<Mapping> {
        let np = self.pattern.node_count();
        let nt = self.target.node_count();
        if np == 0 {
            return SearchOutcome {
                matches: vec![Mapping(Vec::new())],
                complete: true,
                nodes_expanded: 0,
            };
        }
        if np > nt {
            return SearchOutcome {
                matches: Vec::new(),
                complete: true,
                nodes_expanded: 0,
            };
        }
        let order = matching_order(self.pattern);
        // Position of each pattern vertex in the matching order, for
        // splitting its neighbors into already-mapped vs not-yet-mapped.
        let mut pos = vec![0usize; np];
        for (d, &u) in order.iter().enumerate() {
            pos[u.index()] = d;
        }
        let mapped_succs: Vec<Vec<usize>> = order
            .iter()
            .enumerate()
            .map(|(d, &u)| {
                self.pattern
                    .successors(u)
                    .map(NodeId::index)
                    .filter(|&w| pos[w] < d)
                    .collect()
            })
            .collect();
        let mapped_preds: Vec<Vec<usize>> = order
            .iter()
            .enumerate()
            .map(|(d, &u)| {
                self.pattern
                    .predecessors(u)
                    .map(NodeId::index)
                    .filter(|&w| pos[w] < d)
                    .collect()
            })
            .collect();
        // Static degree-compatibility candidate sets: pattern vertex u can
        // only map onto targets with at least its in/out degree (the same
        // test the per-candidate feasibility check used to repeat).
        let static_cands: Vec<BitSet> = (0..np)
            .map(|u| {
                let u = NodeId(u);
                let mut s = BitSet::new(nt);
                for v in 0..nt {
                    let v_id = NodeId(v);
                    if self.target.out_degree(v_id) >= self.pattern.out_degree(u)
                        && self.target.in_degree(v_id) >= self.pattern.in_degree(u)
                    {
                        s.insert(v);
                    }
                }
                s
            })
            .collect();
        let mut state = State {
            pattern: self.pattern,
            target: self.target,
            semantics: self.semantics,
            order,
            mapped_succs,
            mapped_preds,
            static_cands,
            scratch: (0..np).map(|_| BitSet::new(nt)).collect(),
            core_p: vec![None; np],
            unmapped_p: (0..np).collect(),
            unmapped_t: (0..nt).collect(),
            sym,
            matches: Vec::new(),
            nodes_expanded: 0,
            deadline: self.deadline,
            max_matches: self.max_matches,
            stopped: false,
        };
        state.search(0);
        SearchOutcome {
            complete: !state.stopped,
            matches: state.matches,
            nodes_expanded: state.nodes_expanded,
        }
    }
}

/// Grochow–Kellis symmetry breaking: ordering conditions on the images of
/// pattern vertices such that, of the `|Aut(pattern)|` mappings producing
/// any one image, exactly one satisfies every condition.
///
/// Built by repeatedly picking a vertex `u` with a nontrivial orbit under
/// the (progressively stabilized) automorphism group, emitting
/// `m(u) < m(w)` for every other orbit member `w`, and restricting the
/// group to the stabilizer of `u`. See `DESIGN.md` for the exactness
/// argument.
struct SymmetryBreak {
    /// Every automorphism of the pattern (`a[u]` = image of vertex `u`).
    auts: Vec<Vec<usize>>,
    /// `smaller[u]` lists `w` with condition `m(u) < m(w)`.
    smaller: Vec<Vec<usize>>,
    /// `greater[u]` lists `w` with condition `m(w) < m(u)`.
    greater: Vec<Vec<usize>>,
}

/// Patterns above this order skip symmetry breaking: enumerating the
/// automorphism group of a large graph could dwarf the match search it is
/// meant to accelerate (library primitives have ≤ 8 vertices).
const MAX_SYMMETRY_PATTERN: usize = 12;

impl SymmetryBreak {
    /// Derives the ordering conditions for `pattern`, or `None` when the
    /// exactness argument does not apply (isolated vertices), the pattern
    /// is too large to bother, or automorphism discovery hit `deadline`.
    fn for_pattern(pattern: &DiGraph, deadline: Option<Instant>) -> Option<Self> {
        let np = pattern.node_count();
        if np == 0 || np > MAX_SYMMETRY_PATTERN {
            return None;
        }
        if (0..np).any(|u| pattern.degree(NodeId(u)) == 0) {
            return None;
        }
        // Automorphisms = self-monomorphisms: an injective edge-preserving
        // self-map of a finite graph is onto its own edge set, hence an
        // edge- and non-edge-preserving bijection.
        let mut matcher = Vf2::new(pattern, pattern);
        if let Some(d) = deadline {
            matcher = matcher.deadline(d);
        }
        let out = matcher.find_all();
        if !out.complete {
            return None;
        }
        let auts: Vec<Vec<usize>> = out
            .matches
            .iter()
            .map(|m| m.images().iter().map(|v| v.index()).collect())
            .collect();
        let mut smaller = vec![Vec::new(); np];
        let mut greater = vec![Vec::new(); np];
        let mut group = auts.clone();
        while group.len() > 1 {
            // Smallest-index vertex moved by the current (stabilized) group.
            let Some(u) = (0..np).find(|&u| group.iter().any(|a| a[u] != u)) else {
                break;
            };
            let orbit: BTreeSet<usize> = group.iter().map(|a| a[u]).collect();
            for &w in orbit.iter().filter(|&&w| w != u) {
                smaller[u].push(w);
                greater[w].push(u);
            }
            group.retain(|a| a[u] == u);
        }
        Some(SymmetryBreak {
            auts,
            smaller,
            greater,
        })
    }

    /// Replaces a symmetry-broken representative with the mapping the full
    /// (non-broken) enumeration would have reported first for the same
    /// image: the minimum over the automorphism class of the assignment
    /// tuple in matching order — DFS with ascending candidates yields
    /// class members in exactly that order.
    fn canonicalize(&self, m: Mapping, order: &[NodeId]) -> Mapping {
        let imgs = m.images();
        let mut best: Option<(Vec<NodeId>, Vec<NodeId>)> = None;
        for a in &self.auts {
            // (m ∘ a)(u) = m(a(u)).
            let composed: Vec<NodeId> = (0..imgs.len()).map(|u| imgs[a[u]]).collect();
            let tuple: Vec<NodeId> = order.iter().map(|&u| composed[u.index()]).collect();
            if best.as_ref().is_none_or(|(t, _)| tuple < *t) {
                best = Some((tuple, composed));
            }
        }
        Mapping(best.expect("automorphism group contains the identity").1)
    }
}

/// Whole-graph isomorphism test: same order, same size, and an induced
/// bijection exists.
///
/// # Examples
///
/// ```
/// use noc_graph::{iso, DiGraph};
/// let a = DiGraph::cycle(4);
/// let b = DiGraph::from_edges(4, [(1, 3), (3, 2), (2, 0), (0, 1)]).unwrap();
/// assert!(iso::isomorphic(&a, &b));
/// assert!(!iso::isomorphic(&a, &DiGraph::path(4)));
/// ```
pub fn isomorphic(g: &DiGraph, h: &DiGraph) -> bool {
    if g.node_count() != h.node_count() || g.edge_count() != h.edge_count() {
        return false;
    }
    let mut gd: Vec<(usize, usize)> = g
        .nodes()
        .map(|v| (g.in_degree(v), g.out_degree(v)))
        .collect();
    let mut hd: Vec<(usize, usize)> = h
        .nodes()
        .map(|v| (h.in_degree(v), h.out_degree(v)))
        .collect();
    gd.sort_unstable();
    hd.sort_unstable();
    if gd != hd {
        return false;
    }
    Vf2::new(g, h)
        .semantics(Semantics::Induced)
        .find_first()
        .is_some()
}

/// Computes a static most-constrained-first vertex ordering of the pattern:
/// start from the maximum-degree vertex, then repeatedly pick the unordered
/// vertex with the most already-ordered neighbors (ties: higher degree, then
/// smaller index). Connected patterns are matched without ever guessing a
/// free vertex, which keeps the search tree narrow.
fn matching_order(pattern: &DiGraph) -> Vec<NodeId> {
    let n = pattern.node_count();
    let mut ordered = vec![false; n];
    let mut order = Vec::with_capacity(n);
    // Neighbor sets ignoring direction.
    let nbrs: Vec<Vec<usize>> = (0..n)
        .map(|u| {
            let mut s: BTreeSet<usize> = pattern.successors(NodeId(u)).map(NodeId::index).collect();
            s.extend(pattern.predecessors(NodeId(u)).map(NodeId::index));
            s.into_iter().collect()
        })
        .collect();
    for _ in 0..n {
        let mut best: Option<(usize, usize, usize)> = None; // (ordered_nbrs, degree, !index)
        for u in 0..n {
            if ordered[u] {
                continue;
            }
            let on = nbrs[u].iter().filter(|&&w| ordered[w]).count();
            let deg = nbrs[u].len();
            let cand = (on, deg, usize::MAX - u);
            if best.is_none_or(|b| cand > b) {
                best = Some(cand);
            }
        }
        let (_, _, inv) = best.expect("at least one unordered vertex");
        let u = usize::MAX - inv;
        ordered[u] = true;
        order.push(NodeId(u));
    }
    order
}

struct State<'a> {
    pattern: &'a DiGraph,
    target: &'a DiGraph,
    semantics: Semantics,
    order: Vec<NodeId>,
    /// Per depth: pattern successors/predecessors of `order[d]` that are
    /// already mapped when depth `d` is reached (fixed by the static
    /// matching order, so computed once).
    mapped_succs: Vec<Vec<usize>>,
    mapped_preds: Vec<Vec<usize>>,
    /// Per pattern vertex: targets with compatible in/out degrees.
    static_cands: Vec<BitSet>,
    /// Per depth: reusable candidate buffer (no per-node allocation).
    scratch: Vec<BitSet>,
    core_p: Vec<Option<NodeId>>,
    unmapped_p: BitSet,
    unmapped_t: BitSet,
    sym: Option<&'a SymmetryBreak>,
    matches: Vec<Mapping>,
    nodes_expanded: u64,
    deadline: Option<Instant>,
    max_matches: Option<usize>,
    stopped: bool,
}

impl State<'_> {
    fn search(&mut self, depth: usize) {
        if self.stopped {
            return;
        }
        if depth == self.order.len() {
            let images: Vec<NodeId> = self.core_p.iter().map(|m| m.expect("complete")).collect();
            self.matches.push(Mapping(images));
            if let Some(cap) = self.max_matches {
                if self.matches.len() >= cap {
                    self.stopped = true;
                }
            }
            return;
        }
        self.nodes_expanded += 1;
        if self.nodes_expanded.is_multiple_of(256) {
            if let Some(d) = self.deadline {
                if Instant::now() >= d {
                    self.stopped = true;
                    return;
                }
            }
        }

        let u = self.order[depth];
        self.fill_candidates(u, depth);
        // Walk the candidate buffer with a cursor instead of materializing
        // a vector: deeper levels use their own scratch rows, so the
        // buffer is stable across the recursive calls.
        let mut cursor = 0usize;
        while let Some(v) = self.next_candidate(depth, cursor) {
            cursor = v + 1;
            if self.stopped {
                return;
            }
            let v = NodeId(v);
            if !self.symmetry_ok(u, v) {
                continue;
            }
            if !self.feasible(u, v) {
                continue;
            }
            self.core_p[u.index()] = Some(v);
            self.unmapped_p.remove(u.index());
            self.unmapped_t.remove(v.index());
            self.search(depth + 1);
            self.core_p[u.index()] = None;
            self.unmapped_p.insert(u.index());
            self.unmapped_t.insert(v.index());
        }
    }

    /// Computes the candidate targets for pattern vertex `u` into the
    /// depth's scratch row: unmapped targets with compatible degrees,
    /// intersected word-parallel with the adjacency rows dictated by `u`'s
    /// already-mapped pattern neighbors (`u -> w` mapped to `f(w)` forces
    /// `v ∈ pred(f(w))`, `w -> u` forces `v ∈ succ(f(w))`).
    fn fill_candidates(&mut self, u: NodeId, depth: usize) {
        let cands = &mut self.scratch[depth];
        cands.copy_from(&self.unmapped_t);
        cands.intersect_with(&self.static_cands[u.index()]);
        for &w in &self.mapped_succs[depth] {
            let fw = self.core_p[w].expect("neighbor mapped at this depth");
            cands.intersect_with(self.target.pred_set(fw));
        }
        for &w in &self.mapped_preds[depth] {
            let fw = self.core_p[w].expect("neighbor mapped at this depth");
            cands.intersect_with(self.target.succ_set(fw));
        }
    }

    /// First candidate at index `>= cursor` in the depth's scratch row.
    fn next_candidate(&self, depth: usize, cursor: usize) -> Option<usize> {
        let words = self.scratch[depth].words();
        let mut w = cursor / 64;
        if w >= words.len() {
            return None;
        }
        let mut bits = words[w] & (u64::MAX << (cursor % 64));
        loop {
            if bits != 0 {
                return Some(w * 64 + bits.trailing_zeros() as usize);
            }
            w += 1;
            if w >= words.len() {
                return None;
            }
            bits = words[w];
        }
    }

    /// Checks the symmetry-breaking ordering conditions that involve `u`
    /// and an already-mapped vertex (each condition is fully enforced once
    /// both endpoints are mapped, so checking at assignment time covers
    /// all of them).
    fn symmetry_ok(&self, u: NodeId, v: NodeId) -> bool {
        let Some(sym) = self.sym else {
            return true;
        };
        for &w in &sym.smaller[u.index()] {
            if let Some(fw) = self.core_p[w] {
                if v >= fw {
                    return false;
                }
            }
        }
        for &w in &sym.greater[u.index()] {
            if let Some(fw) = self.core_p[w] {
                if v <= fw {
                    return false;
                }
            }
        }
        true
    }

    fn feasible(&self, u: NodeId, v: NodeId) -> bool {
        // Degree compatibility is pre-filtered by the static candidate
        // sets; here only the look-ahead on unmapped neighbors remains
        // (safe for both semantics).
        let p_succ_unmapped = self.pattern.succ_set(u).intersection_len(&self.unmapped_p);
        let t_succ_unmapped = self.target.succ_set(v).intersection_len(&self.unmapped_t);
        if p_succ_unmapped > t_succ_unmapped {
            return false;
        }
        let p_pred_unmapped = self.pattern.pred_set(u).intersection_len(&self.unmapped_p);
        let t_pred_unmapped = self.target.pred_set(v).intersection_len(&self.unmapped_t);
        if p_pred_unmapped > t_pred_unmapped {
            return false;
        }
        if self.semantics == Semantics::Induced {
            // Mapped pattern vertices must mirror non-adjacency too. The
            // adjacency direction itself is enforced by candidate filtering.
            for (w, fw) in self
                .core_p
                .iter()
                .enumerate()
                .filter_map(|(w, m)| m.map(|fw| (NodeId(w), fw)))
            {
                if !self.pattern.has_edge(u, w) && self.target.has_edge(v, fw) {
                    return false;
                }
                if !self.pattern.has_edge(w, u) && self.target.has_edge(fw, v) {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn empty_pattern_yields_single_empty_match() {
        let p = DiGraph::new(0);
        let t = DiGraph::complete(3);
        let out = Vf2::new(&p, &t).find_all();
        assert_eq!(out.matches.len(), 1);
        assert!(out.matches[0].is_empty());
        assert!(out.complete);
    }

    #[test]
    fn pattern_larger_than_target_has_no_match() {
        let p = DiGraph::complete(5);
        let t = DiGraph::complete(4);
        assert!(!Vf2::new(&p, &t).exists());
    }

    #[test]
    fn identity_match_on_same_graph() {
        let g = DiGraph::cycle(5);
        let out = Vf2::new(&g, &g).find_all();
        // A directed 5-cycle has exactly 5 automorphisms (rotations).
        assert_eq!(out.matches.len(), 5);
        assert!(out.complete);
        for m in &out.matches {
            for e in g.edges() {
                assert!(g.has_edge(m.target_of(e.src), m.target_of(e.dst)));
            }
        }
    }

    #[test]
    fn k4_in_k4_has_24_mappings_one_image() {
        let p = DiGraph::complete(4);
        let out = Vf2::new(&p, &p).find_all();
        assert_eq!(out.matches.len(), 24);
        let distinct = Vf2::new(&p, &p).distinct_images();
        assert_eq!(distinct.matches.len(), 1);
    }

    #[test]
    fn cycle4_images_in_k4() {
        // K4 contains directed 4-cycles on its single 4-subset: 4!/4 = 6
        // cyclic orders, i.e. 6 distinct edge-set images... but opposite
        // orientations have distinct edge sets, so all 6 are distinct.
        let p = DiGraph::cycle(4);
        let t = DiGraph::complete(4);
        let out = Vf2::new(&p, &t).find_all();
        assert_eq!(out.matches.len(), 24); // 6 images x 4 rotations
        let distinct = Vf2::new(&p, &t).distinct_images();
        assert_eq!(distinct.matches.len(), 6);
    }

    #[test]
    fn star_matches_anchor_on_high_out_degree() {
        // Pattern: broadcast 0 -> {1, 2}. Target: vertex 3 broadcasts to 0, 1, 2.
        let p = DiGraph::out_star(3);
        let t = DiGraph::from_edges(4, [(3, 0), (3, 1), (3, 2)]).unwrap();
        let out = Vf2::new(&p, &t).find_all();
        // Anchor must be 3; leaves are any ordered pair from {0,1,2}: 6.
        assert_eq!(out.matches.len(), 6);
        for m in &out.matches {
            assert_eq!(m.target_of(NodeId(0)), NodeId(3));
        }
        // Distinct images: choose 2 of 3 leaves = 3.
        assert_eq!(Vf2::new(&p, &t).distinct_images().matches.len(), 3);
    }

    #[test]
    fn monomorphism_vs_induced() {
        // Pattern path 0->1->2 inside K3: monomorphism succeeds, induced
        // fails (K3 has the extra edges).
        let p = DiGraph::path(3);
        let t = DiGraph::complete(3);
        assert!(Vf2::new(&p, &t).exists());
        assert!(!Vf2::new(&p, &t).semantics(Semantics::Induced).exists());
    }

    #[test]
    fn induced_matches_exact_structure() {
        let p = DiGraph::path(3);
        let mut t = DiGraph::new(5);
        t.add_edge(NodeId(4), NodeId(2));
        t.add_edge(NodeId(2), NodeId(0));
        let out = Vf2::new(&p, &t).semantics(Semantics::Induced).find_all();
        assert_eq!(out.matches.len(), 1);
        assert_eq!(out.matches[0].images(), &[NodeId(4), NodeId(2), NodeId(0)]);
    }

    #[test]
    fn no_match_when_direction_wrong() {
        let p = DiGraph::path(2); // 0 -> 1
        let t = DiGraph::from_edges(2, [(1, 0)]).unwrap();
        let out = Vf2::new(&p, &t).find_all();
        // 0->1 maps onto 1->0 with mapping (0->1, 1->0); that IS a match.
        assert_eq!(out.matches.len(), 1);
        // But a 2-cycle pattern cannot match a single edge.
        let p2 = DiGraph::from_edges(2, [(0, 1), (1, 0)]).unwrap();
        assert!(!Vf2::new(&p2, &t).exists());
    }

    #[test]
    fn max_matches_caps_and_marks_incomplete() {
        let p = DiGraph::cycle(3);
        let t = DiGraph::complete(5);
        let out = Vf2::new(&p, &t).max_matches(4).find_all();
        assert_eq!(out.matches.len(), 4);
        assert!(!out.complete);
    }

    #[test]
    fn deadline_in_past_stops_quickly() {
        let p = DiGraph::cycle(4);
        let t = DiGraph::complete(12);
        let out = Vf2::new(&p, &t)
            .deadline(Instant::now() - Duration::from_millis(1))
            .find_all();
        assert!(!out.complete);
    }

    #[test]
    fn gossip_columns_found_in_disjoint_union() {
        // Two disjoint K4 gossip cliques inside an 8-vertex graph.
        let mut t = DiGraph::new(8);
        for base in [0usize, 4] {
            for i in 0..4 {
                for j in 0..4 {
                    if i != j {
                        t.add_edge(NodeId(base + i), NodeId(base + j));
                    }
                }
            }
        }
        let p = DiGraph::complete(4);
        let distinct = Vf2::new(&p, &t).distinct_images();
        assert_eq!(distinct.matches.len(), 2);
        let first = &distinct.matches[0];
        let verts: BTreeSet<usize> = first.images().iter().map(|v| v.index()).collect();
        assert_eq!(verts, BTreeSet::from([0, 1, 2, 3]));
    }

    #[test]
    fn isomorphic_detects_relabeled_cycle() {
        let a = DiGraph::cycle(6);
        let b = DiGraph::from_edges(6, [(2, 4), (4, 0), (0, 5), (5, 3), (3, 1), (1, 2)]).unwrap();
        assert!(isomorphic(&a, &b));
    }

    #[test]
    fn isomorphic_rejects_different_structures() {
        assert!(!isomorphic(&DiGraph::cycle(6), &DiGraph::path(6)));
        assert!(!isomorphic(&DiGraph::cycle(4), &DiGraph::cycle(5)));
        // Same degree sequence, different structure: two 3-cycles vs one
        // 6-cycle.
        let mut two_tri = DiGraph::new(6);
        for (s, d) in [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)] {
            two_tri.add_edge(NodeId(s), NodeId(d));
        }
        assert!(!isomorphic(&DiGraph::cycle(6), &two_tri));
    }

    #[test]
    fn mapping_paper_format_is_one_based() {
        let m = Mapping::new(vec![NodeId(0), NodeId(4), NodeId(5)]);
        assert_eq!(m.paper_format(), "(1 1), (2 5), (3 6)");
        assert_eq!(m.to_string(), "(1 1), (2 5), (3 6)");
    }

    #[test]
    #[should_panic(expected = "injective")]
    fn mapping_rejects_duplicates() {
        Mapping::new(vec![NodeId(1), NodeId(1)]);
    }

    #[test]
    fn image_edges_are_sorted_and_complete() {
        let p = DiGraph::cycle(3);
        let t = DiGraph::complete(4);
        let m = Vf2::new(&p, &t).find_first().unwrap();
        let edges = m.image_edges(&p);
        assert_eq!(edges.len(), 3);
        let mut sorted = edges.clone();
        sorted.sort();
        assert_eq!(edges, sorted);
    }

    #[test]
    fn deterministic_enumeration_order() {
        let p = DiGraph::cycle(3);
        let t = DiGraph::complete(5);
        let a = Vf2::new(&p, &t).find_all();
        let b = Vf2::new(&p, &t).find_all();
        assert_eq!(a.matches, b.matches);
    }

    #[test]
    fn disconnected_pattern_matches_components_independently() {
        // Pattern: two disjoint edges 0->1, 2->3.
        let p = DiGraph::from_edges(4, [(0, 1), (2, 3)]).unwrap();
        let t = DiGraph::from_edges(4, [(0, 1), (2, 3)]).unwrap();
        let out = Vf2::new(&p, &t).find_all();
        // Either component maps to either edge: 2 ways.
        assert_eq!(out.matches.len(), 2);
    }

    #[test]
    fn nodes_expanded_is_reported() {
        let p = DiGraph::cycle(3);
        let t = DiGraph::complete(4);
        let out = Vf2::new(&p, &t).find_all();
        assert!(out.nodes_expanded > 0);
    }
}
