//! Directed-graph foundation for NoC communication architecture synthesis.
//!
//! This crate provides the graph machinery used throughout the workspace to
//! reproduce *Ogras & Marculescu, "Energy- and Performance-Driven NoC
//! Communication Architecture Synthesis Using a Decomposition Approach"*
//! (DATE 2005):
//!
//! * [`DiGraph`] — a dense directed graph over a fixed vertex set, the shape
//!   required by the paper's graph sum/difference operations (Definitions
//!   1-2), where subtraction removes edges but keeps every vertex.
//! * [`ops`] — graph sum, difference ("remaining graph") and edge-induced
//!   subgraphs.
//! * [`iso`] — a full VF2 (sub)graph isomorphism engine (Definition 3 /
//!   reference 13 of the paper) supporting monomorphism and induced
//!   semantics, match enumeration, canonical deduplication and time-outs.
//! * [`algo`] — breadth-first/weighted shortest paths, strongly connected
//!   components, cycle detection, diameter, and Kernighan–Lin bipartitioning
//!   used for bisection-bandwidth constraint checks (Section 4.2).
//! * [`Acg`] — the Application Characterization Graph: a [`DiGraph`] whose
//!   edges carry communication volume `v(e)` and bandwidth `b(e)`
//!   requirements (Section 4).
//!
//! # Example
//!
//! Build a 4-vertex gossip pattern (complete digraph) and check a few basic
//! properties:
//!
//! ```
//! use noc_graph::{DiGraph, NodeId};
//!
//! let g = DiGraph::complete(4);
//! assert_eq!(g.node_count(), 4);
//! assert_eq!(g.edge_count(), 12); // n * (n - 1) directed edges
//! assert!(g.has_edge(NodeId(0), NodeId(3)));
//! assert!(!g.has_edge(NodeId(2), NodeId(2))); // no self loops
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod acg;
pub mod algo;
mod bitset;
mod digraph;
pub mod dot;
mod error;
pub mod iso;
pub mod ops;

pub use acg::{Acg, AcgBuilder, EdgeDemand};
pub use bitset::{BitSet, BitSetKey};
pub use digraph::{DiGraph, Edge, NodeId};
pub use error::GraphError;

/// Convenient result alias for fallible graph operations.
pub type Result<T> = std::result::Result<T, GraphError>;
