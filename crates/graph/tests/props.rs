//! Property-based tests for the graph foundation.

use noc_graph::{algo, iso, ops, DiGraph, NodeId};
use proptest::prelude::*;

/// Strategy: a random digraph of order 2..=10 with each possible edge
/// present independently.
fn arb_digraph() -> impl Strategy<Value = DiGraph> {
    (2usize..=10).prop_flat_map(|n| {
        let pairs: Vec<(usize, usize)> = (0..n)
            .flat_map(|u| (0..n).filter(move |&v| v != u).map(move |v| (u, v)))
            .collect();
        let m = pairs.len();
        proptest::collection::vec(proptest::bool::ANY, m).prop_map(move |mask| {
            let mut g = DiGraph::new(n);
            for (keep, &(u, v)) in mask.iter().zip(&pairs) {
                if *keep {
                    g.add_edge(NodeId(u), NodeId(v));
                }
            }
            g
        })
    })
}

/// Strategy: a digraph plus a random subset of its edges.
fn graph_and_edge_subset() -> impl Strategy<Value = (DiGraph, Vec<(usize, usize)>)> {
    arb_digraph().prop_flat_map(|g| {
        let edges: Vec<(usize, usize)> =
            g.edges().map(|e| (e.src.index(), e.dst.index())).collect();
        let m = edges.len();
        proptest::collection::vec(proptest::bool::ANY, m).prop_map(move |mask| {
            let sub: Vec<(usize, usize)> = mask
                .iter()
                .zip(&edges)
                .filter_map(|(keep, &e)| keep.then_some(e))
                .collect();
            (g.clone(), sub)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// (G - S) + S == G for any edge subset S of G.
    #[test]
    fn difference_then_sum_round_trips((g, sub) in graph_and_edge_subset()) {
        let s = ops::edge_induced(&g, sub.iter().copied()).unwrap();
        let r = ops::difference(&g, &s).unwrap();
        let back = ops::sum(&r, &s).unwrap();
        prop_assert_eq!(back, g);
    }

    /// Difference never loses or duplicates edges: |G - S| = |G| - |S|.
    #[test]
    fn difference_edge_count((g, sub) in graph_and_edge_subset()) {
        let s = ops::edge_induced(&g, sub.iter().copied()).unwrap();
        let r = ops::difference(&g, &s).unwrap();
        prop_assert_eq!(r.edge_count(), g.edge_count() - s.edge_count());
        // No subtracted edge survives.
        for e in s.edges() {
            prop_assert!(!r.has_edge(e.src, e.dst));
        }
    }

    /// A planted pattern is always found by VF2 (monomorphism).
    #[test]
    fn vf2_finds_planted_pattern(
        host_n in 5usize..=12,
        pattern_kind in 0usize..4,
        seed in proptest::sample::select(vec![1usize, 3, 5, 7, 11, 13]),
    ) {
        let pattern = match pattern_kind {
            0 => DiGraph::complete(3),
            1 => DiGraph::cycle(4),
            2 => DiGraph::out_star(4),
            _ => DiGraph::path(3),
        };
        let k = pattern.node_count();
        prop_assume!(k <= host_n);
        // Deterministic injective embedding derived from the seed.
        let mut images = Vec::new();
        let mut v = seed % host_n;
        while images.len() < k {
            if !images.contains(&NodeId(v)) {
                images.push(NodeId(v));
            }
            v = (v + seed) % host_n;
            if images.len() < k && images.contains(&NodeId(v)) {
                v = (v + 1) % host_n;
            }
        }
        let host = ops::embed(&pattern, host_n, &images).unwrap();
        let found = iso::Vf2::new(&pattern, &host).find_first();
        prop_assert!(found.is_some());
        // Every reported match maps pattern edges onto host edges.
        let all = iso::Vf2::new(&pattern, &host).find_all();
        prop_assert!(all.complete);
        for m in &all.matches {
            for e in pattern.edges() {
                prop_assert!(host.has_edge(m.target_of(e.src), m.target_of(e.dst)));
            }
        }
    }

    /// Every match found in a random host is a valid monomorphism.
    #[test]
    fn vf2_matches_are_valid(g in arb_digraph()) {
        let pattern = DiGraph::cycle(3);
        let out = iso::Vf2::new(&pattern, &g).find_all();
        for m in &out.matches {
            for e in pattern.edges() {
                prop_assert!(g.has_edge(m.target_of(e.src), m.target_of(e.dst)));
            }
            // Injectivity.
            let mut seen = std::collections::BTreeSet::new();
            for &v in m.images() {
                prop_assert!(seen.insert(v));
            }
        }
    }

    /// Distinct images are pairwise different edge sets and a subset of the
    /// full enumeration.
    #[test]
    fn distinct_images_are_distinct(g in arb_digraph()) {
        let pattern = DiGraph::cycle(3);
        let distinct = iso::Vf2::new(&pattern, &g).distinct_images();
        let mut seen = std::collections::BTreeSet::new();
        for m in &distinct.matches {
            prop_assert!(seen.insert(m.image_edges(&pattern)));
        }
        let full = iso::Vf2::new(&pattern, &g).find_all();
        let full_images: std::collections::BTreeSet<_> =
            full.matches.iter().map(|m| m.image_edges(&pattern)).collect();
        prop_assert_eq!(seen, full_images);
    }

    /// Graph isomorphism is invariant under vertex relabeling.
    #[test]
    fn isomorphism_invariant_under_relabel(g in arb_digraph(), rot in 1usize..5) {
        let n = g.node_count();
        let perm: Vec<NodeId> = (0..n).map(|v| NodeId((v + rot) % n)).collect();
        let mut h = DiGraph::new(n);
        for e in g.edges() {
            h.add_edge(perm[e.src.index()], perm[e.dst.index()]);
        }
        prop_assert!(iso::isomorphic(&g, &h));
    }

    /// BFS distances satisfy the triangle property along edges:
    /// d(u) + 1 >= d(v) for every edge u -> v with u reachable.
    #[test]
    fn bfs_distances_are_consistent(g in arb_digraph()) {
        let d = algo::bfs_distances(&g, NodeId(0));
        for e in g.edges() {
            if let Some(du) = d[e.src.index()] {
                let dv = d[e.dst.index()].expect("successor of reachable vertex is reachable");
                prop_assert!(dv <= du + 1);
            }
        }
    }

    /// SCC partition covers each vertex exactly once.
    #[test]
    fn scc_is_a_partition(g in arb_digraph()) {
        let comps = algo::strongly_connected_components(&g);
        let mut seen = vec![false; g.node_count()];
        for c in &comps {
            for v in c {
                prop_assert!(!seen[v.index()], "vertex {v} in two components");
                seen[v.index()] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    /// find_cycle agrees with the SCC-based acyclicity test.
    #[test]
    fn cycle_detection_matches_scc(g in arb_digraph()) {
        let has_cycle = algo::find_cycle(&g).is_some();
        let scc_nontrivial = algo::strongly_connected_components(&g)
            .iter()
            .any(|c| c.len() > 1);
        prop_assert_eq!(has_cycle, scc_nontrivial);
    }

    /// Bisection returns a balanced partition whose reported weight matches
    /// a direct recount.
    #[test]
    fn bisection_is_balanced_and_consistent(g in arb_digraph()) {
        let p = algo::bisection_bandwidth(&g, |_, _| 1.0);
        let n = g.node_count();
        prop_assert_eq!(p.side_a.len() + p.side_b.len(), n);
        prop_assert!((p.side_a.len() as isize - p.side_b.len() as isize).abs() <= 1);
        let in_a: Vec<bool> = {
            let mut m = vec![false; n];
            for v in &p.side_a {
                m[v.index()] = true;
            }
            m
        };
        let recount: f64 = g
            .edges()
            .filter(|e| in_a[e.src.index()] != in_a[e.dst.index()])
            .count() as f64;
        prop_assert_eq!(p.cut_weight, recount);
    }
}
