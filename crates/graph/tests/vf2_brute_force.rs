//! Cross-validation of the VF2 engine against a naive brute-force
//! enumerator on small graphs. Every match set must agree exactly, for
//! both monomorphism and induced semantics — the strongest correctness
//! anchor the matcher has.

use noc_graph::{
    iso::{Mapping, Semantics, Vf2},
    DiGraph, NodeId,
};
use proptest::prelude::*;

/// Enumerates all injective mappings pattern -> target by brute force and
/// filters by the semantics.
fn brute_force(pattern: &DiGraph, target: &DiGraph, semantics: Semantics) -> Vec<Vec<NodeId>> {
    let np = pattern.node_count();
    let nt = target.node_count();
    let mut out = Vec::new();
    let mut assignment: Vec<NodeId> = Vec::with_capacity(np);
    let mut used = vec![false; nt];

    fn recurse(
        pattern: &DiGraph,
        target: &DiGraph,
        semantics: Semantics,
        assignment: &mut Vec<NodeId>,
        used: &mut Vec<bool>,
        out: &mut Vec<Vec<NodeId>>,
    ) {
        let depth = assignment.len();
        if depth == pattern.node_count() {
            out.push(assignment.clone());
            return;
        }
        for cand in 0..target.node_count() {
            if used[cand] {
                continue;
            }
            // Check consistency with all previously assigned vertices.
            let v = NodeId(cand);
            let u = NodeId(depth);
            let mut ok = true;
            for (w_idx, &fw) in assignment.iter().enumerate() {
                let w = NodeId(w_idx);
                let p_fwd = pattern.has_edge(u, w);
                let p_bwd = pattern.has_edge(w, u);
                let t_fwd = target.has_edge(v, fw);
                let t_bwd = target.has_edge(fw, v);
                match semantics {
                    Semantics::Monomorphism => {
                        if (p_fwd && !t_fwd) || (p_bwd && !t_bwd) {
                            ok = false;
                            break;
                        }
                    }
                    Semantics::Induced => {
                        if p_fwd != t_fwd || p_bwd != t_bwd {
                            ok = false;
                            break;
                        }
                    }
                }
            }
            if !ok {
                continue;
            }
            assignment.push(v);
            used[cand] = true;
            recurse(pattern, target, semantics, assignment, used, out);
            assignment.pop();
            used[cand] = false;
        }
    }
    recurse(
        pattern,
        target,
        semantics,
        &mut assignment,
        &mut used,
        &mut out,
    );
    out.sort();
    out
}

fn arb_graph(max_n: usize) -> impl Strategy<Value = DiGraph> {
    (2usize..=max_n).prop_flat_map(|n| {
        let pairs: Vec<(usize, usize)> = (0..n)
            .flat_map(|u| (0..n).filter(move |&v| v != u).map(move |v| (u, v)))
            .collect();
        let m = pairs.len();
        proptest::collection::vec(proptest::bool::weighted(0.35), m).prop_map(move |mask| {
            let mut g = DiGraph::new(n);
            for (keep, &(u, v)) in mask.iter().zip(&pairs) {
                if *keep {
                    g.add_edge(NodeId(u), NodeId(v));
                }
            }
            g
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// VF2 monomorphism results equal brute force exactly.
    #[test]
    fn vf2_equals_brute_force_monomorphism(
        pattern in arb_graph(4),
        target in arb_graph(6),
    ) {
        let expected = brute_force(&pattern, &target, Semantics::Monomorphism);
        let mut got: Vec<Vec<NodeId>> = Vf2::new(&pattern, &target)
            .find_all()
            .matches
            .into_iter()
            .map(|m| m.images().to_vec())
            .collect();
        got.sort();
        prop_assert_eq!(got, expected);
    }

    /// VF2 induced results equal brute force exactly.
    #[test]
    fn vf2_equals_brute_force_induced(
        pattern in arb_graph(4),
        target in arb_graph(6),
    ) {
        let expected = brute_force(&pattern, &target, Semantics::Induced);
        let mut got: Vec<Vec<NodeId>> = Vf2::new(&pattern, &target)
            .semantics(Semantics::Induced)
            .find_all()
            .matches
            .into_iter()
            .map(|m| m.images().to_vec())
            .collect();
        got.sort();
        prop_assert_eq!(got, expected);
    }

    /// Distinct-image counts equal the brute-force image-set count.
    #[test]
    fn distinct_image_count_matches_brute_force(
        pattern in arb_graph(4),
        target in arb_graph(6),
    ) {
        let raw = brute_force(&pattern, &target, Semantics::Monomorphism);
        let expected: std::collections::BTreeSet<Vec<_>> = raw
            .into_iter()
            .map(|images| Mapping::new(images).image_edges(&pattern))
            .collect();
        let got = Vf2::new(&pattern, &target).distinct_images();
        prop_assert!(got.complete);
        prop_assert_eq!(got.matches.len(), expected.len());
    }

    /// The symmetry-broken `distinct_images` equals the naive reference —
    /// full enumeration deduplicated by image edge set — *exactly*:
    /// same images, same representative mappings, same order. Slightly
    /// larger graphs than the raw-enumeration tests, since this is the
    /// invariant the decomposition engine's bit-identical results ride on.
    #[test]
    fn distinct_images_equal_naive_reference(
        pattern in arb_graph(5),
        target in arb_graph(7),
        induced in proptest::bool::ANY,
    ) {
        let semantics = if induced { Semantics::Induced } else { Semantics::Monomorphism };
        let expected = reference_distinct(&pattern, &target, semantics);
        let got = Vf2::new(&pattern, &target).semantics(semantics).distinct_images();
        prop_assert!(got.complete);
        prop_assert_eq!(got.matches, expected);
    }

    /// A capped `distinct_images` returns a subset of the reference images
    /// (each with a valid representative) and reports itself incomplete
    /// when it was truncated.
    #[test]
    fn distinct_images_cap_yields_reference_subset(
        pattern in arb_graph(4),
        target in arb_graph(7),
        cap in 1usize..=6,
    ) {
        let reference = reference_distinct(&pattern, &target, Semantics::Monomorphism);
        let all_images: std::collections::BTreeSet<Vec<_>> = reference
            .iter()
            .map(|m| m.image_edges(&pattern))
            .collect();
        let got = Vf2::new(&pattern, &target)
            .max_matches(cap)
            .distinct_images();
        prop_assert!(got.matches.len() <= cap);
        if got.complete {
            // An uncapped run would have returned everything.
            prop_assert_eq!(got.matches.len(), all_images.len());
        }
        let mut seen = std::collections::BTreeSet::new();
        for m in &got.matches {
            let image = m.image_edges(&pattern);
            prop_assert!(all_images.contains(&image), "image not in reference set");
            prop_assert!(seen.insert(image), "duplicate image under cap");
        }
    }
}

/// The naive specification of `distinct_images`: enumerate every injective
/// mapping by brute force in VF2's deterministic order (full enumeration is
/// itself property-tested above), then keep the first mapping per image
/// edge set, sorted by image.
fn reference_distinct(pattern: &DiGraph, target: &DiGraph, semantics: Semantics) -> Vec<Mapping> {
    let raw = Vf2::new(pattern, target).semantics(semantics).find_all();
    assert!(raw.complete);
    let mut by_image: std::collections::BTreeMap<Vec<_>, Mapping> =
        std::collections::BTreeMap::new();
    for m in raw.matches {
        by_image.entry(m.image_edges(pattern)).or_insert(m);
    }
    by_image.into_values().collect()
}

/// A deadline already in the past aborts `distinct_images` on both the
/// symmetry-broken path (pattern with automorphisms) and the dedup
/// fallback (pattern with an isolated vertex), and marks the outcome
/// incomplete instead of returning a wrong "complete" answer.
#[test]
fn distinct_images_deadline_marks_incomplete() {
    use std::time::{Duration, Instant};
    let past = Instant::now() - Duration::from_millis(1);
    let symmetric = DiGraph::cycle(4);
    let dense = DiGraph::complete(12);
    let out = Vf2::new(&symmetric, &dense)
        .deadline(past)
        .distinct_images();
    assert!(!out.complete);

    // Vertex 3 isolated -> fallback path. Big enough that the search
    // reaches the (256-expansion granularity) deadline check.
    let mut isolated = DiGraph::new(4);
    isolated.add_edge(NodeId(0), NodeId(1));
    isolated.add_edge(NodeId(1), NodeId(2));
    let out = Vf2::new(&isolated, &dense).deadline(past).distinct_images();
    assert!(!out.complete);
}

/// A couple of fixed regression cases worth pinning precisely.
#[test]
fn fixed_cases() {
    // Pattern with an isolated vertex: it may map anywhere unused.
    let mut pattern = DiGraph::new(3);
    pattern.add_edge(NodeId(0), NodeId(1)); // vertex 2 isolated
    let target = DiGraph::from_edges(4, [(2, 3)]).unwrap();
    let expected = brute_force(&pattern, &target, Semantics::Monomorphism);
    assert_eq!(expected.len(), 2); // (0,1)->(2,3); 2 -> {0 or 1}
    let got = Vf2::new(&pattern, &target).find_all();
    assert_eq!(got.matches.len(), 2);

    // Antiparallel pair needs both directions.
    let two_cycle = DiGraph::from_edges(2, [(0, 1), (1, 0)]).unwrap();
    let one_way = DiGraph::from_edges(2, [(0, 1)]).unwrap();
    assert!(brute_force(&two_cycle, &one_way, Semantics::Monomorphism).is_empty());
    assert!(!Vf2::new(&two_cycle, &one_way).exists());
}
