//! Cross-validation of the VF2 engine against a naive brute-force
//! enumerator on small graphs. Every match set must agree exactly, for
//! both monomorphism and induced semantics — the strongest correctness
//! anchor the matcher has.

use noc_graph::{
    iso::{Mapping, Semantics, Vf2},
    DiGraph, NodeId,
};
use proptest::prelude::*;

/// Enumerates all injective mappings pattern -> target by brute force and
/// filters by the semantics.
fn brute_force(pattern: &DiGraph, target: &DiGraph, semantics: Semantics) -> Vec<Vec<NodeId>> {
    let np = pattern.node_count();
    let nt = target.node_count();
    let mut out = Vec::new();
    let mut assignment: Vec<NodeId> = Vec::with_capacity(np);
    let mut used = vec![false; nt];

    fn recurse(
        pattern: &DiGraph,
        target: &DiGraph,
        semantics: Semantics,
        assignment: &mut Vec<NodeId>,
        used: &mut Vec<bool>,
        out: &mut Vec<Vec<NodeId>>,
    ) {
        let depth = assignment.len();
        if depth == pattern.node_count() {
            out.push(assignment.clone());
            return;
        }
        for cand in 0..target.node_count() {
            if used[cand] {
                continue;
            }
            // Check consistency with all previously assigned vertices.
            let v = NodeId(cand);
            let u = NodeId(depth);
            let mut ok = true;
            for (w_idx, &fw) in assignment.iter().enumerate() {
                let w = NodeId(w_idx);
                let p_fwd = pattern.has_edge(u, w);
                let p_bwd = pattern.has_edge(w, u);
                let t_fwd = target.has_edge(v, fw);
                let t_bwd = target.has_edge(fw, v);
                match semantics {
                    Semantics::Monomorphism => {
                        if (p_fwd && !t_fwd) || (p_bwd && !t_bwd) {
                            ok = false;
                            break;
                        }
                    }
                    Semantics::Induced => {
                        if p_fwd != t_fwd || p_bwd != t_bwd {
                            ok = false;
                            break;
                        }
                    }
                }
            }
            if !ok {
                continue;
            }
            assignment.push(v);
            used[cand] = true;
            recurse(pattern, target, semantics, assignment, used, out);
            assignment.pop();
            used[cand] = false;
        }
    }
    recurse(
        pattern,
        target,
        semantics,
        &mut assignment,
        &mut used,
        &mut out,
    );
    out.sort();
    out
}

fn arb_graph(max_n: usize) -> impl Strategy<Value = DiGraph> {
    (2usize..=max_n).prop_flat_map(|n| {
        let pairs: Vec<(usize, usize)> = (0..n)
            .flat_map(|u| (0..n).filter(move |&v| v != u).map(move |v| (u, v)))
            .collect();
        let m = pairs.len();
        proptest::collection::vec(proptest::bool::weighted(0.35), m).prop_map(move |mask| {
            let mut g = DiGraph::new(n);
            for (keep, &(u, v)) in mask.iter().zip(&pairs) {
                if *keep {
                    g.add_edge(NodeId(u), NodeId(v));
                }
            }
            g
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// VF2 monomorphism results equal brute force exactly.
    #[test]
    fn vf2_equals_brute_force_monomorphism(
        pattern in arb_graph(4),
        target in arb_graph(6),
    ) {
        let expected = brute_force(&pattern, &target, Semantics::Monomorphism);
        let mut got: Vec<Vec<NodeId>> = Vf2::new(&pattern, &target)
            .find_all()
            .matches
            .into_iter()
            .map(|m| m.images().to_vec())
            .collect();
        got.sort();
        prop_assert_eq!(got, expected);
    }

    /// VF2 induced results equal brute force exactly.
    #[test]
    fn vf2_equals_brute_force_induced(
        pattern in arb_graph(4),
        target in arb_graph(6),
    ) {
        let expected = brute_force(&pattern, &target, Semantics::Induced);
        let mut got: Vec<Vec<NodeId>> = Vf2::new(&pattern, &target)
            .semantics(Semantics::Induced)
            .find_all()
            .matches
            .into_iter()
            .map(|m| m.images().to_vec())
            .collect();
        got.sort();
        prop_assert_eq!(got, expected);
    }

    /// Distinct-image counts equal the brute-force image-set count.
    #[test]
    fn distinct_image_count_matches_brute_force(
        pattern in arb_graph(4),
        target in arb_graph(6),
    ) {
        let raw = brute_force(&pattern, &target, Semantics::Monomorphism);
        let expected: std::collections::BTreeSet<Vec<_>> = raw
            .into_iter()
            .map(|images| Mapping::new(images).image_edges(&pattern))
            .collect();
        let got = Vf2::new(&pattern, &target).distinct_images();
        prop_assert!(got.complete);
        prop_assert_eq!(got.matches.len(), expected.len());
    }
}

/// A couple of fixed regression cases worth pinning precisely.
#[test]
fn fixed_cases() {
    // Pattern with an isolated vertex: it may map anywhere unused.
    let mut pattern = DiGraph::new(3);
    pattern.add_edge(NodeId(0), NodeId(1)); // vertex 2 isolated
    let target = DiGraph::from_edges(4, [(2, 3)]).unwrap();
    let expected = brute_force(&pattern, &target, Semantics::Monomorphism);
    assert_eq!(expected.len(), 2); // (0,1)->(2,3); 2 -> {0 or 1}
    let got = Vf2::new(&pattern, &target).find_all();
    assert_eq!(got.matches.len(), 2);

    // Antiparallel pair needs both directions.
    let two_cycle = DiGraph::from_edges(2, [(0, 1), (1, 0)]).unwrap();
    let one_way = DiGraph::from_edges(2, [(0, 1)]).unwrap();
    assert!(brute_force(&two_cycle, &one_way, Semantics::Monomorphism).is_empty());
    assert!(!Vf2::new(&two_cycle, &one_way).exists());
}
