//! Scenario enumeration helpers for exploration campaigns.
//!
//! The benchmark generators in this crate each answer "give me *one*
//! application"; a design-space exploration campaign (the `noc-explore`
//! crate) instead asks for a *family* of applications swept over size and
//! seed. [`WorkloadFamily`] names every generator behind one enum so a
//! campaign axis can be declared as data, and [`WorkloadFamily::instantiate`]
//! maps `(family, size, seed)` to a deterministic [`Acg`].

use noc_graph::Acg;

use crate::pajek;
use crate::{automotive_18, multimedia_16, tgff, TgffConfig};

/// Every workload generator in this crate, as a campaign axis value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum WorkloadFamily {
    /// TGFF-style series-parallel task DAGs (Figure 4a's family).
    Tgff,
    /// Pajek-style planted graphs — unions of embedded communication
    /// primitives plus noise (Figure 4b's family), with the density knobs
    /// scaled from `n` exactly as the Figure 4b reproduction does.
    PajekPlanted,
    /// Pajek-style Erdős–Rényi digraphs with expected out-degree ~2.5.
    ErdosRenyi,
    /// The fixed 18-node automotive benchmark highlighted in Figure 4a.
    Automotive,
    /// The fixed 16-node multimedia benchmark.
    Multimedia,
    /// The fixed 8-node Figure 5 benchmark (reconstructed from the paper's
    /// printed decomposition).
    Fig5,
}

impl WorkloadFamily {
    /// Every family, in a stable order (useful for grid axes).
    pub const ALL: [WorkloadFamily; 6] = [
        WorkloadFamily::Tgff,
        WorkloadFamily::PajekPlanted,
        WorkloadFamily::ErdosRenyi,
        WorkloadFamily::Automotive,
        WorkloadFamily::Multimedia,
        WorkloadFamily::Fig5,
    ];

    /// A short stable label (used in campaign reports and scenario keys).
    pub fn label(self) -> &'static str {
        match self {
            WorkloadFamily::Tgff => "tgff",
            WorkloadFamily::PajekPlanted => "pajek_planted",
            WorkloadFamily::ErdosRenyi => "erdos_renyi",
            WorkloadFamily::Automotive => "automotive18",
            WorkloadFamily::Multimedia => "multimedia16",
            WorkloadFamily::Fig5 => "fig5",
        }
    }

    /// For fixed benchmarks, the node count they always have; `None` for
    /// the sized generator families.
    pub fn fixed_size(self) -> Option<usize> {
        match self {
            WorkloadFamily::Automotive => Some(18),
            WorkloadFamily::Multimedia => Some(16),
            WorkloadFamily::Fig5 => Some(8),
            _ => None,
        }
    }

    /// The node count [`instantiate`](Self::instantiate) will actually
    /// produce for a requested `n`.
    pub fn effective_size(self, n: usize) -> usize {
        self.fixed_size().unwrap_or(n)
    }

    /// Builds the deterministic workload for `(self, n, seed)`.
    ///
    /// Fixed benchmarks ignore `n` and `seed` (they are single concrete
    /// applications); the sized families are deterministic per `(n, seed)`.
    ///
    /// # Panics
    ///
    /// Panics if a sized family is asked for `n == 0`.
    pub fn instantiate(self, n: usize, seed: u64) -> Acg {
        match self {
            WorkloadFamily::Tgff => tgff(&TgffConfig {
                tasks: n,
                seed,
                ..TgffConfig::default()
            }),
            WorkloadFamily::PajekPlanted => planted_sized(n, seed),
            WorkloadFamily::ErdosRenyi => {
                let p = (2.5 / (n.max(2) as f64 - 1.0)).min(1.0);
                pajek::erdos_renyi(n, p, 8.0, seed)
            }
            WorkloadFamily::Automotive => automotive_18(),
            WorkloadFamily::Multimedia => multimedia_16(),
            WorkloadFamily::Fig5 => pajek::fig5_benchmark(),
        }
    }
}

/// The Figure 4b planted-graph recipe: primitive counts scaled from `n`.
/// This is the single source of truth for that scaling — the reproduction
/// harness (`noc-bench::fig4b_workload`) and campaign grids both call it,
/// so a campaign point at `(PajekPlanted, n, seed)` is byte-identical to
/// the corresponding Figure 4b instance.
pub fn planted_sized(n: usize, seed: u64) -> Acg {
    pajek::planted(&pajek::PlantedConfig {
        n,
        gossip4: n / 8,
        broadcast4: n / 10,
        broadcast3: n / 8,
        loops4: n / 10,
        noise_prob: 0.01,
        volume: 8.0,
        seed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_family_instantiates_deterministically() {
        for family in WorkloadFamily::ALL {
            let a = family.instantiate(10, 3);
            let b = family.instantiate(10, 3);
            assert_eq!(a, b, "{family:?} not deterministic");
            assert_eq!(a.core_count(), family.effective_size(10));
            assert!(a.graph().edge_count() > 0, "{family:?} is edgeless");
        }
    }

    #[test]
    fn fixed_families_ignore_size_and_seed() {
        assert_eq!(
            WorkloadFamily::Fig5.instantiate(30, 1),
            WorkloadFamily::Fig5.instantiate(8, 99)
        );
        assert_eq!(WorkloadFamily::Automotive.effective_size(5), 18);
    }

    #[test]
    fn sized_families_vary_with_seed() {
        for family in [
            WorkloadFamily::Tgff,
            WorkloadFamily::PajekPlanted,
            WorkloadFamily::ErdosRenyi,
        ] {
            let a = family.instantiate(16, 1);
            let b = family.instantiate(16, 2);
            assert_ne!(a, b, "{family:?} ignores its seed");
        }
    }
}
