//! TGFF-style task graph generation.
//!
//! TGFF (Dick, Rhodes & Wolf, 1998) grows pseudo-random task DAGs by
//! repeatedly expanding a frontier with bounded fan-out and fan-in. This
//! module reproduces that style: a single-root DAG grown by seeded random
//! expansion, with communication volumes drawn from a configurable range.

// Index loops below walk several parallel arrays; indexing is clearer.
#![allow(clippy::needless_range_loop)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use noc_graph::Acg;

/// Parameters of the TGFF-style generator.
#[derive(Debug, Clone, PartialEq)]
pub struct TgffConfig {
    /// Number of tasks (vertices).
    pub tasks: usize,
    /// Maximum out-degree of any task.
    pub max_out_degree: usize,
    /// Maximum in-degree of any task.
    pub max_in_degree: usize,
    /// Probability of adding a cross edge between existing tasks after the
    /// tree growth phase (introduces re-convergence, like TGFF's
    /// `prob_multi`).
    pub cross_edge_prob: f64,
    /// Communication volume range in bits, inclusive.
    pub volume_range: (f64, f64),
    /// RNG seed (graphs are deterministic per seed).
    pub seed: u64,
}

impl Default for TgffConfig {
    fn default() -> Self {
        TgffConfig {
            tasks: 12,
            max_out_degree: 3,
            max_in_degree: 3,
            cross_edge_prob: 0.15,
            volume_range: (16.0, 256.0),
            seed: 1,
        }
    }
}

/// Generates a TGFF-style task DAG as an [`Acg`].
///
/// The graph is connected (every task reachable from the root), acyclic,
/// and respects the configured degree bounds.
///
/// # Panics
///
/// Panics if `tasks == 0` or the volume range is inverted.
pub fn tgff(config: &TgffConfig) -> Acg {
    assert!(config.tasks > 0, "need at least one task");
    assert!(
        config.volume_range.0 <= config.volume_range.1 && config.volume_range.0 >= 0.0,
        "invalid volume range"
    );
    let mut rng = StdRng::seed_from_u64(config.seed);
    let n = config.tasks;
    let mut out_deg = vec![0usize; n];
    let mut in_deg = vec![0usize; n];
    let mut edges: Vec<(usize, usize)> = Vec::new();

    // Growth phase: attach each new task under an existing one with spare
    // out-degree (biased to recent tasks for the pipeline feel of TGFF).
    for v in 1..n {
        let candidates: Vec<usize> = (0..v)
            .filter(|&u| out_deg[u] < config.max_out_degree)
            .collect();
        let parent = if candidates.is_empty() {
            v - 1 // degenerate config: chain regardless of the bound
        } else {
            // Bias toward the most recently added half.
            let lo = candidates.len() / 2;
            let idx = if rng.gen_bool(0.7) && lo < candidates.len() {
                rng.gen_range(lo..candidates.len())
            } else {
                rng.gen_range(0..candidates.len())
            };
            candidates[idx]
        };
        edges.push((parent, v));
        out_deg[parent] += 1;
        in_deg[v] += 1;
    }

    // Cross edges: forward only (keeps the DAG acyclic).
    for u in 0..n {
        for v in (u + 1)..n {
            if edges.contains(&(u, v)) {
                continue;
            }
            if out_deg[u] < config.max_out_degree
                && in_deg[v] < config.max_in_degree
                && rng.gen::<f64>() < config.cross_edge_prob
            {
                edges.push((u, v));
                out_deg[u] += 1;
                in_deg[v] += 1;
            }
        }
    }

    let mut builder = Acg::builder(n);
    for i in 0..n {
        builder = builder.name(i, format!("task{i}"));
    }
    for (u, v) in edges {
        let vol = rng.gen_range(config.volume_range.0..=config.volume_range.1);
        builder = builder.volume(u, v, vol.round());
    }
    builder.build()
}

/// An 18-node automotive-style benchmark in the spirit of the TGFF-based
/// E3S suite the paper cites for Figure 4a: sensor front-ends fanning into
/// fusion stages, a control pipeline, and actuator fan-out.
///
/// Deterministic (no RNG): 18 tasks, 22 edges.
pub fn automotive_18() -> Acg {
    let names = [
        "wheel-fl",
        "wheel-fr",
        "wheel-rl",
        "wheel-rr", // 0-3: wheel sensors
        "accel",
        "gyro", // 4-5: inertial
        "abs-fuse",
        "esp-fuse", // 6-7: fusion
        "engine-map",
        "throttle", // 8-9
        "ecu",      // 10: central control
        "brake-fl",
        "brake-fr",
        "brake-rl",
        "brake-rr", // 11-14: actuators
        "dash",
        "logger",
        "can-gw", // 15-17: telemetry
    ];
    let mut builder = Acg::builder(18);
    for (i, name) in names.iter().enumerate() {
        builder = builder.name(i, *name);
    }
    let edges: [(usize, usize, f64); 22] = [
        (0, 6, 64.0),
        (1, 6, 64.0),
        (2, 6, 64.0),
        (3, 6, 64.0),
        (4, 7, 96.0),
        (5, 7, 96.0),
        (6, 7, 128.0),
        (7, 10, 160.0),
        (8, 9, 64.0),
        (9, 10, 96.0),
        (10, 11, 48.0),
        (10, 12, 48.0),
        (10, 13, 48.0),
        (10, 14, 48.0),
        (10, 15, 32.0),
        (10, 16, 32.0),
        (10, 17, 64.0),
        (6, 10, 80.0),
        (8, 10, 64.0),
        (15, 17, 16.0),
        (16, 17, 16.0),
        (7, 16, 32.0),
    ];
    for (u, v, vol) in edges {
        builder = builder.volume(u, v, vol);
    }
    builder.build()
}

/// A 16-core multimedia-decoder-style benchmark (VOPD-like pipeline):
/// variable-length decode feeding inverse scan/quantization/DCT stages,
/// a motion-compensation loop with frame memories, and an output stage.
/// The volume *ratios* follow the video-decoder benchmarks common in the
/// NoC mapping literature (heavy DCT-path traffic, light control edges);
/// the absolute numbers are per macroblock in bits.
///
/// Deterministic: 16 cores, 20 edges.
pub fn multimedia_16() -> Acg {
    let names = [
        "vld",        // 0: variable-length decoder
        "run-dec",    // 1: run-length decoder
        "inv-scan",   // 2: inverse scan
        "acdc-pred",  // 3: AC/DC prediction
        "iquant",     // 4: inverse quantization
        "idct",       // 5: inverse DCT
        "upsamp",     // 6: up-sampler
        "vop-rec",    // 7: VOP reconstruction
        "padding",    // 8
        "vop-mem",    // 9: reconstructed frame memory
        "stripe-mem", // 10
        "mem-ctl",    // 11
        "arm",        // 12: control CPU
        "demux",      // 13: input demultiplexer
        "disp-ctl",   // 14: display controller
        "dac",        // 15: video DAC
    ];
    let mut builder = Acg::builder(16);
    for (i, name) in names.iter().enumerate() {
        builder = builder.name(i, *name);
    }
    let edges: [(usize, usize, f64); 20] = [
        (13, 0, 70.0),   // demux -> vld
        (0, 1, 70.0),    // vld -> run-dec
        (1, 2, 362.0),   // run-dec -> inv-scan
        (2, 3, 362.0),   // inv-scan -> acdc-pred
        (3, 4, 357.0),   // acdc-pred -> iquant
        (3, 10, 49.0),   // acdc-pred -> stripe-mem
        (10, 3, 27.0),   // stripe-mem -> acdc-pred
        (4, 5, 353.0),   // iquant -> idct
        (5, 6, 300.0),   // idct -> upsamp
        (6, 7, 313.0),   // upsamp -> vop-rec
        (7, 8, 313.0),   // vop-rec -> padding
        (8, 9, 313.0),   // padding -> vop-mem
        (9, 7, 500.0),   // vop-mem -> vop-rec (reference frames)
        (9, 11, 94.0),   // vop-mem -> mem-ctl
        (11, 9, 94.0),   // mem-ctl -> vop-mem
        (12, 11, 16.0),  // arm -> mem-ctl (control)
        (11, 12, 16.0),  // mem-ctl -> arm
        (12, 13, 16.0),  // arm -> demux
        (9, 14, 313.0),  // vop-mem -> disp-ctl
        (14, 15, 313.0), // disp-ctl -> dac
    ];
    for (u, v, vol) in edges {
        builder = builder.volume(u, v, vol);
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_graph::{algo, NodeId};

    #[test]
    fn generates_requested_size() {
        for tasks in [1usize, 5, 12, 18] {
            let acg = tgff(&TgffConfig {
                tasks,
                ..TgffConfig::default()
            });
            assert_eq!(acg.core_count(), tasks);
            if tasks > 1 {
                assert!(acg.graph().edge_count() >= tasks - 1);
            }
        }
    }

    #[test]
    fn graphs_are_acyclic_dags() {
        for seed in 0..10 {
            let acg = tgff(&TgffConfig {
                tasks: 15,
                seed,
                ..TgffConfig::default()
            });
            assert!(
                algo::find_cycle(acg.graph()).is_none(),
                "seed {seed} produced a cycle"
            );
        }
    }

    #[test]
    fn graphs_are_weakly_connected() {
        for seed in 0..10 {
            let acg = tgff(&TgffConfig {
                tasks: 18,
                seed,
                ..TgffConfig::default()
            });
            assert!(algo::is_weakly_connected(acg.graph()), "seed {seed}");
        }
    }

    #[test]
    fn degree_bounds_respected() {
        let cfg = TgffConfig {
            tasks: 25,
            max_out_degree: 2,
            max_in_degree: 2,
            cross_edge_prob: 0.5,
            seed: 3,
            ..TgffConfig::default()
        };
        let acg = tgff(&cfg);
        for v in acg.graph().nodes() {
            assert!(acg.graph().out_degree(v) <= 2, "vertex {v} out-degree");
            // In-degree bound applies to cross edges only; growth gives 1.
            assert!(acg.graph().in_degree(v) <= 3, "vertex {v} in-degree");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = TgffConfig {
            tasks: 14,
            seed: 9,
            ..TgffConfig::default()
        };
        assert_eq!(tgff(&cfg), tgff(&cfg));
        let other = tgff(&TgffConfig {
            seed: 10,
            ..cfg.clone()
        });
        assert_ne!(tgff(&cfg), other);
    }

    #[test]
    fn volumes_within_range() {
        let acg = tgff(&TgffConfig {
            tasks: 10,
            volume_range: (8.0, 16.0),
            seed: 4,
            ..TgffConfig::default()
        });
        for (_, d) in acg.demands() {
            assert!(d.volume >= 8.0 && d.volume <= 16.0);
        }
    }

    #[test]
    fn multimedia_benchmark_shape() {
        let acg = multimedia_16();
        assert_eq!(acg.core_count(), 16);
        assert_eq!(acg.graph().edge_count(), 20);
        assert!(algo::is_weakly_connected(acg.graph()));
        // The motion-compensation loop makes it cyclic (unlike plain DAGs).
        assert!(algo::find_cycle(acg.graph()).is_some());
        assert_eq!(acg.core_name(NodeId(5)), "idct");
        // The frame memory is the traffic hub.
        assert!(acg.volume(NodeId(9), NodeId(7)) == 500.0);
    }

    #[test]
    fn automotive_benchmark_shape() {
        let acg = automotive_18();
        assert_eq!(acg.core_count(), 18);
        assert_eq!(acg.graph().edge_count(), 22);
        assert!(algo::find_cycle(acg.graph()).is_none());
        assert!(algo::is_weakly_connected(acg.graph()));
        assert_eq!(acg.core_name(NodeId(10)), "ecu");
        // The ECU is the fan-out hub.
        assert_eq!(acg.graph().out_degree(NodeId(10)), 7);
    }
}
