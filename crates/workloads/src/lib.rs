//! Benchmark workload generators for the synthesis experiments.
//!
//! The paper evaluates its decomposition algorithm on two families of
//! random benchmarks (Section 5.1):
//!
//! * graphs produced by **TGFF** ("Task Graphs For Free", ref. \[17\]) —
//!   series-parallel task DAGs up to 18 nodes, including an automotive
//!   benchmark (Figure 4a); and
//! * larger random graphs produced with **Pajek** (ref. \[14\]) up to 40
//!   nodes (Figure 4b).
//!
//! Both tools are re-implemented here as seeded, deterministic generators
//! (see the substitution notes in `DESIGN.md`):
//!
//! * [`tgff`] — fan-out/fan-in task-DAG generation in the TGFF style plus
//!   an 18-node automotive-like benchmark;
//! * [`pajek`] — Erdős–Rényi digraphs, *planted* graphs (unions of
//!   embedded communication primitives with optional noise, the kind of
//!   structure the paper's Figure 5 example exhibits), and the exact
//!   8-node Figure 5 benchmark reconstructed from the paper's printed
//!   decomposition output.
//!
//! # Example
//!
//! ```
//! use noc_workloads::{tgff, TgffConfig};
//!
//! let acg = tgff(&TgffConfig { tasks: 18, seed: 7, ..TgffConfig::default() });
//! assert_eq!(acg.core_count(), 18);
//! assert!(acg.graph().edge_count() > 0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod pajek;
pub mod scenarios;
mod tgff;

pub use scenarios::WorkloadFamily;
pub use tgff::{automotive_18, multimedia_16, tgff, TgffConfig};
