//! Pajek-style random graph generation (Figure 4b of the paper) and the
//! reconstructed Figure 5 benchmark.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use noc_graph::{Acg, DiGraph, NodeId};

/// Erdős–Rényi digraph `G(n, p)`: every ordered pair is an edge with
/// probability `p`, each carrying `volume` bits. Deterministic per `seed`.
///
/// # Panics
///
/// Panics if `p` is not a probability.
pub fn erdos_renyi(n: usize, p: f64, volume: f64, seed: u64) -> Acg {
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut builder = Acg::builder(n);
    for u in 0..n {
        for v in 0..n {
            if u != v && rng.gen::<f64>() < p {
                builder = builder.volume(u, v, volume);
            }
        }
    }
    builder.build()
}

/// Parameters for [`planted`] graphs: unions of embedded communication
/// primitives plus noise. This is the structure the paper's random
/// benchmarks exhibit — the Figure 5 example decomposes completely into
/// one gossip and four broadcasts, which a uniform random graph would
/// essentially never do.
#[derive(Debug, Clone, PartialEq)]
pub struct PlantedConfig {
    /// Number of vertices.
    pub n: usize,
    /// Number of embedded 4-node gossip cliques.
    pub gossip4: usize,
    /// Number of embedded one-to-four broadcast stars.
    pub broadcast4: usize,
    /// Number of embedded one-to-three broadcast stars.
    pub broadcast3: usize,
    /// Number of embedded 4-node loops.
    pub loops4: usize,
    /// Probability of each additional noise edge.
    pub noise_prob: f64,
    /// Volume per edge, bits.
    pub volume: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for PlantedConfig {
    fn default() -> Self {
        PlantedConfig {
            n: 12,
            gossip4: 1,
            broadcast4: 1,
            broadcast3: 2,
            loops4: 1,
            noise_prob: 0.0,
            volume: 8.0,
            seed: 1,
        }
    }
}

/// Generates a planted graph per `config`. Overlapping embeddings merge
/// edges (the decomposition then has fewer exact covers — harder inputs).
///
/// # Panics
///
/// Panics if `n < 5` (the largest primitive needs 5 vertices).
pub fn planted(config: &PlantedConfig) -> Acg {
    assert!(config.n >= 5, "planted graphs need at least 5 vertices");
    let mut rng = StdRng::seed_from_u64(config.seed);
    let n = config.n;
    let mut graph = DiGraph::new(n);

    let pick_distinct = |rng: &mut StdRng, k: usize| -> Vec<usize> {
        let mut chosen: Vec<usize> = Vec::with_capacity(k);
        while chosen.len() < k {
            let v = rng.gen_range(0..n);
            if !chosen.contains(&v) {
                chosen.push(v);
            }
        }
        chosen
    };

    for _ in 0..config.gossip4 {
        let vs = pick_distinct(&mut rng, 4);
        for &a in &vs {
            for &b in &vs {
                if a != b {
                    graph.add_edge(NodeId(a), NodeId(b));
                }
            }
        }
    }
    for _ in 0..config.broadcast4 {
        let vs = pick_distinct(&mut rng, 5);
        for &t in &vs[1..] {
            graph.add_edge(NodeId(vs[0]), NodeId(t));
        }
    }
    for _ in 0..config.broadcast3 {
        let vs = pick_distinct(&mut rng, 4);
        for &t in &vs[1..] {
            graph.add_edge(NodeId(vs[0]), NodeId(t));
        }
    }
    for _ in 0..config.loops4 {
        let vs = pick_distinct(&mut rng, 4);
        for i in 0..4 {
            graph.add_edge(NodeId(vs[i]), NodeId(vs[(i + 1) % 4]));
        }
    }
    for u in 0..n {
        for v in 0..n {
            if u != v && rng.gen::<f64>() < config.noise_prob {
                graph.add_edge(NodeId(u), NodeId(v));
            }
        }
    }
    Acg::from_graph_uniform(graph, noc_graph::EdgeDemand::from_volume(config.volume))
}

/// The 8-node random benchmark of the paper's Figure 5, reconstructed from
/// the printed decomposition output (the matches are edge-disjoint, so
/// their union *is* the input graph):
///
/// ```text
/// 1: MGG4,  Mapping: (1 1), (2 2), (3 5), (4 6)
///  3: G123, Mapping: (1 3), (2 2), (3 5), (4 6)
///   3: G123, Mapping: (1 7), (2 3), (3 5), (4 6)
///    2: G124, Mapping: (1 8), (2 1), (3 3), (4 6), (5 7)
///     3: G123, Mapping: (1 4), (2 5), (3 6), (4 7)
/// ```
///
/// 25 edges: a gossip clique on vertices {1, 2, 5, 6} (1-based) plus four
/// broadcast stars. The paper notes "there is no remaining graph after
/// these matches are found".
pub fn fig5_benchmark() -> Acg {
    let mut graph = DiGraph::new(8);
    // MGG4 on 0-based {0, 1, 4, 5}.
    for &a in &[0usize, 1, 4, 5] {
        for &b in &[0usize, 1, 4, 5] {
            if a != b {
                graph.add_edge(NodeId(a), NodeId(b));
            }
        }
    }
    // G123 stars: anchor -> targets (0-based).
    for (anchor, targets) in [(2usize, [1usize, 4, 5]), (6, [2, 4, 5]), (3, [4, 5, 6])] {
        for t in targets {
            graph.add_edge(NodeId(anchor), NodeId(t));
        }
    }
    // G124 star: anchor 7 -> {0, 2, 5, 6}.
    for t in [0usize, 2, 5, 6] {
        graph.add_edge(NodeId(7), NodeId(t));
    }
    Acg::from_graph_uniform(graph, noc_graph::EdgeDemand::from_volume(8.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erdos_renyi_extremes() {
        let empty = erdos_renyi(6, 0.0, 1.0, 1);
        assert!(empty.graph().is_edgeless());
        let full = erdos_renyi(6, 1.0, 1.0, 1);
        assert_eq!(full.graph().edge_count(), 30);
    }

    #[test]
    fn erdos_renyi_density_tracks_p() {
        let acg = erdos_renyi(20, 0.25, 1.0, 42);
        let m = acg.graph().edge_count() as f64;
        let expected = 20.0 * 19.0 * 0.25;
        assert!((m - expected).abs() < expected * 0.35, "m = {m}");
    }

    #[test]
    fn erdos_renyi_deterministic() {
        assert_eq!(erdos_renyi(10, 0.3, 2.0, 7), erdos_renyi(10, 0.3, 2.0, 7));
        assert_ne!(erdos_renyi(10, 0.3, 2.0, 7), erdos_renyi(10, 0.3, 2.0, 8));
    }

    #[test]
    fn planted_contains_its_gossip() {
        let acg = planted(&PlantedConfig {
            n: 8,
            gossip4: 1,
            broadcast4: 0,
            broadcast3: 0,
            loops4: 0,
            noise_prob: 0.0,
            volume: 1.0,
            seed: 11,
        });
        // Exactly one K4: 12 edges.
        assert_eq!(acg.graph().edge_count(), 12);
        let pattern = DiGraph::complete(4);
        assert!(noc_graph::iso::Vf2::new(&pattern, acg.graph()).exists());
    }

    #[test]
    fn planted_sizes_grow_with_instances() {
        let small = planted(&PlantedConfig::default());
        let big = planted(&PlantedConfig {
            gossip4: 2,
            loops4: 2,
            n: 16,
            ..PlantedConfig::default()
        });
        assert!(big.graph().edge_count() >= small.graph().edge_count());
    }

    #[test]
    fn fig5_benchmark_matches_paper_structure() {
        let acg = fig5_benchmark();
        assert_eq!(acg.core_count(), 8);
        assert_eq!(acg.graph().edge_count(), 25);
        // The gossip clique on 1-based {1, 2, 5, 6}.
        for &a in &[0usize, 1, 4, 5] {
            for &b in &[0usize, 1, 4, 5] {
                if a != b {
                    assert!(acg.graph().has_edge(NodeId(a), NodeId(b)));
                }
            }
        }
        // The paper's first G123: 1-based vertex 3 broadcasts to 2, 5, 6.
        assert!(acg.graph().has_edge(NodeId(2), NodeId(1)));
        assert!(acg.graph().has_edge(NodeId(2), NodeId(4)));
        assert!(acg.graph().has_edge(NodeId(2), NodeId(5)));
    }
}
