//! Wong–Liu slicing-tree floorplanning by simulated annealing.
//!
//! The floorplan is a *normalized Polish expression*: a postfix string over
//! core indices and the cut operators `H` (horizontal cut: stack children
//! vertically) and `V` (vertical cut: children side by side), with no two
//! identical adjacent operators. Annealing perturbs the expression with the
//! three classic moves (operand swap, chain complement, operand/operator
//! swap) plus core rotation, minimizing chip bounding-box area with an
//! optional volume-weighted wirelength term.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{Core, Placement};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Element {
    Operand(usize),
    H,
    V,
}

/// Simulated-annealing slicing floorplanner; see the [crate docs](crate)
/// for an example.
#[derive(Debug, Clone)]
pub struct SlicingFloorplanner {
    cores: Vec<Core>,
    seed: u64,
    wire_weight: f64,
    connections: Vec<(usize, usize, f64)>,
    moves_per_temp: usize,
    cooling: f64,
}

impl SlicingFloorplanner {
    /// Creates a floorplanner for the given cores.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is empty.
    pub fn new(cores: Vec<Core>) -> Self {
        assert!(!cores.is_empty(), "cannot floorplan zero cores");
        SlicingFloorplanner {
            cores,
            seed: 1,
            wire_weight: 0.0,
            connections: Vec::new(),
            moves_per_temp: 0, // 0 = auto (30 * n)
            cooling: 0.92,
        }
    }

    /// Sets the RNG seed (runs are deterministic per seed).
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Adds a wirelength objective: `weight * Σ volume * distance(src, dst)`
    /// over the given `(src, dst, volume)` connections is added to the area
    /// cost (both normalized to their initial values).
    ///
    /// # Panics
    ///
    /// Panics if `weight` is negative or any core index is out of range.
    #[must_use]
    pub fn wirelength(mut self, weight: f64, connections: Vec<(usize, usize, f64)>) -> Self {
        assert!(weight >= 0.0, "wirelength weight must be non-negative");
        for &(s, d, _) in &connections {
            assert!(
                s < self.cores.len() && d < self.cores.len(),
                "connection endpoint out of range"
            );
        }
        self.wire_weight = weight;
        self.connections = connections;
        self
    }

    /// Overrides the annealing effort (moves per temperature step).
    #[must_use]
    pub fn moves_per_temp(mut self, moves: usize) -> Self {
        self.moves_per_temp = moves;
        self
    }

    /// Runs the annealer and extracts the best placement found.
    pub fn run(&self) -> Placement {
        let n = self.cores.len();
        if n == 1 {
            let c = &self.cores[0];
            return Placement::new(
                vec![(c.width_mm() / 2.0, c.height_mm() / 2.0)],
                c.width_mm(),
                c.height_mm(),
            );
        }
        let mut rng = StdRng::seed_from_u64(self.seed);

        // Initial expression: 0 1 V 2 V 3 V … (all blocks in a row),
        // alternating H/V to seed some 2-D structure.
        let mut expr: Vec<Element> = vec![Element::Operand(0)];
        for i in 1..n {
            expr.push(Element::Operand(i));
            expr.push(if i % 2 == 0 { Element::H } else { Element::V });
        }
        let mut rotated = vec![false; n];

        let cost_of = |expr: &[Element], rotated: &[bool]| -> f64 {
            let (w, h, centers) = evaluate(expr, &self.cores, rotated);
            let area = w * h;
            if self.wire_weight == 0.0 {
                return area;
            }
            let wl: f64 = self
                .connections
                .iter()
                .map(|&(s, d, vol)| {
                    let (sx, sy) = centers[s];
                    let (dx, dy) = centers[d];
                    vol * ((sx - dx).abs() + (sy - dy).abs())
                })
                .sum();
            area + self.wire_weight * wl
        };

        let mut cur_cost = cost_of(&expr, &rotated);
        let mut best_expr = expr.clone();
        let mut best_rot = rotated.clone();
        let mut best_cost = cur_cost;

        let moves = if self.moves_per_temp == 0 {
            30 * n
        } else {
            self.moves_per_temp
        };
        let mut temperature = cur_cost * 0.3 + 1e-9;
        let t_end = temperature * 1e-4;

        while temperature > t_end {
            for _ in 0..moves {
                let mut cand = expr.clone();
                let mut cand_rot = rotated.clone();
                let applied = match rng.gen_range(0..4) {
                    0 => move_swap_operands(&mut cand, &mut rng),
                    1 => move_complement_chain(&mut cand, &mut rng),
                    2 => move_swap_operand_operator(&mut cand, &mut rng),
                    _ => {
                        let v = rng.gen_range(0..n);
                        cand_rot[v] = !cand_rot[v];
                        true
                    }
                };
                if !applied {
                    continue;
                }
                let cand_cost = cost_of(&cand, &cand_rot);
                let delta = cand_cost - cur_cost;
                if delta <= 0.0 || rng.gen::<f64>() < (-delta / temperature).exp() {
                    expr = cand;
                    rotated = cand_rot;
                    cur_cost = cand_cost;
                    if cur_cost < best_cost {
                        best_cost = cur_cost;
                        best_expr = expr.clone();
                        best_rot = rotated.clone();
                    }
                }
            }
            temperature *= self.cooling;
        }

        let (w, h, centers) = evaluate(&best_expr, &self.cores, &best_rot);
        Placement::new(centers, w, h)
    }
}

/// Evaluates a Polish expression: returns (chip width, chip height, core
/// centers).
fn evaluate(expr: &[Element], cores: &[Core], rotated: &[bool]) -> (f64, f64, Vec<(f64, f64)>) {
    // Bottom-up sizes.
    #[derive(Clone)]
    struct Node {
        w: f64,
        h: f64,
        elem: Element,
        left: Option<usize>,
        right: Option<usize>,
    }
    let mut nodes: Vec<Node> = Vec::with_capacity(expr.len());
    let mut stack: Vec<usize> = Vec::new();
    for &e in expr {
        match e {
            Element::Operand(i) => {
                let (mut w, mut h) = (cores[i].width_mm(), cores[i].height_mm());
                if rotated[i] {
                    std::mem::swap(&mut w, &mut h);
                }
                nodes.push(Node {
                    w,
                    h,
                    elem: e,
                    left: None,
                    right: None,
                });
                stack.push(nodes.len() - 1);
            }
            Element::H | Element::V => {
                let r = stack.pop().expect("valid postfix");
                let l = stack.pop().expect("valid postfix");
                let (w, h) = if e == Element::V {
                    (nodes[l].w + nodes[r].w, nodes[l].h.max(nodes[r].h))
                } else {
                    (nodes[l].w.max(nodes[r].w), nodes[l].h + nodes[r].h)
                };
                nodes.push(Node {
                    w,
                    h,
                    elem: e,
                    left: Some(l),
                    right: Some(r),
                });
                stack.push(nodes.len() - 1);
            }
        }
    }
    let root = *stack.last().expect("non-empty expression");
    let (cw, ch) = (nodes[root].w, nodes[root].h);

    // Top-down coordinates.
    let mut centers = vec![(0.0, 0.0); cores.len()];
    let mut todo = vec![(root, 0.0_f64, 0.0_f64)];
    while let Some((id, x, y)) = todo.pop() {
        let node = nodes[id].clone();
        match node.elem {
            Element::Operand(i) => {
                centers[i] = (x + node.w / 2.0, y + node.h / 2.0);
            }
            Element::V => {
                let l = node.left.expect("internal node");
                let r = node.right.expect("internal node");
                todo.push((l, x, y));
                todo.push((r, x + nodes[l].w, y));
            }
            Element::H => {
                let l = node.left.expect("internal node");
                let r = node.right.expect("internal node");
                todo.push((l, x, y));
                todo.push((r, x, y + nodes[l].h));
            }
        }
    }
    (cw, ch, centers)
}

/// M1: swap two adjacent operands (adjacent in operand order).
fn move_swap_operands(expr: &mut [Element], rng: &mut StdRng) -> bool {
    let operand_positions: Vec<usize> = expr
        .iter()
        .enumerate()
        .filter_map(|(i, e)| matches!(e, Element::Operand(_)).then_some(i))
        .collect();
    if operand_positions.len() < 2 {
        return false;
    }
    let k = rng.gen_range(0..operand_positions.len() - 1);
    expr.swap(operand_positions[k], operand_positions[k + 1]);
    true
}

/// M2: complement a maximal chain of operators containing a random operator.
fn move_complement_chain(expr: &mut [Element], rng: &mut StdRng) -> bool {
    let op_positions: Vec<usize> = expr
        .iter()
        .enumerate()
        .filter_map(|(i, e)| matches!(e, Element::H | Element::V).then_some(i))
        .collect();
    if op_positions.is_empty() {
        return false;
    }
    let anchor = op_positions[rng.gen_range(0..op_positions.len())];
    // Expand to the maximal contiguous operator chain around the anchor.
    let mut lo = anchor;
    while lo > 0 && matches!(expr[lo - 1], Element::H | Element::V) {
        lo -= 1;
    }
    let mut hi = anchor;
    while hi + 1 < expr.len() && matches!(expr[hi + 1], Element::H | Element::V) {
        hi += 1;
    }
    for e in &mut expr[lo..=hi] {
        *e = match *e {
            Element::H => Element::V,
            Element::V => Element::H,
            Element::Operand(_) => unreachable!("chain contains only operators"),
        };
    }
    true
}

/// M3: swap an adjacent operand/operator pair, keeping the expression a
/// valid normalized Polish expression (balloting property).
fn move_swap_operand_operator(expr: &mut [Element], rng: &mut StdRng) -> bool {
    let candidates: Vec<usize> = (0..expr.len() - 1)
        .filter(|&i| {
            matches!(
                (expr[i], expr[i + 1]),
                (Element::Operand(_), Element::H | Element::V)
                    | (Element::H | Element::V, Element::Operand(_))
            )
        })
        .collect();
    if candidates.is_empty() {
        return false;
    }
    // Try a few random candidates; accept the first that stays valid.
    for _ in 0..4 {
        let i = candidates[rng.gen_range(0..candidates.len())];
        expr.swap(i, i + 1);
        if is_valid_normalized(expr) {
            return true;
        }
        expr.swap(i, i + 1); // revert
    }
    false
}

/// Balloting property (every prefix has more operands than operators) and
/// normalization (no two equal adjacent operators).
fn is_valid_normalized(expr: &[Element]) -> bool {
    let mut operands = 0usize;
    let mut operators = 0usize;
    let mut prev_op: Option<Element> = None;
    for &e in expr {
        match e {
            Element::Operand(_) => {
                operands += 1;
                prev_op = None;
            }
            Element::H | Element::V => {
                operators += 1;
                if operators + 1 > operands {
                    return false;
                }
                if prev_op == Some(e) {
                    return false;
                }
                prev_op = Some(e);
            }
        }
    }
    operators + 1 == operands
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_graph::NodeId;

    fn unit_cores(n: usize) -> Vec<Core> {
        (0..n)
            .map(|i| Core::new(format!("c{i}"), 1.0, 1.0))
            .collect()
    }

    fn overlap(a: ((f64, f64), (f64, f64)), b: ((f64, f64), (f64, f64))) -> bool {
        let ((ax, ay), (aw, ah)) = a;
        let ((bx, by), (bw, bh)) = b;
        let eps = 1e-9;
        ax - aw / 2.0 + eps < bx + bw / 2.0
            && bx - bw / 2.0 + eps < ax + aw / 2.0
            && ay - ah / 2.0 + eps < by + bh / 2.0
            && by - bh / 2.0 + eps < ay + ah / 2.0
    }

    #[test]
    fn single_core_is_trivial() {
        let p = SlicingFloorplanner::new(vec![Core::new("solo", 3.0, 2.0)]).run();
        assert_eq!(p.core_count(), 1);
        assert_eq!(p.chip_area_mm2(), 6.0);
        assert_eq!(p.center(NodeId(0)), (1.5, 1.0));
    }

    #[test]
    fn placements_do_not_overlap() {
        let cores = vec![
            Core::new("a", 2.0, 1.0),
            Core::new("b", 1.0, 1.0),
            Core::new("c", 1.0, 2.0),
            Core::new("d", 1.5, 1.5),
            Core::new("e", 1.0, 1.0),
        ];
        let dims: Vec<f64> = cores
            .iter()
            .flat_map(|c| [c.width_mm(), c.height_mm()])
            .collect();
        let p = SlicingFloorplanner::new(cores.clone()).seed(3).run();
        for i in 0..cores.len() {
            for j in (i + 1)..cores.len() {
                // The annealer may rotate blocks; check both orientations.
                let rect = |k: usize| {
                    let (w, h) = (dims[2 * k], dims[2 * k + 1]);
                    let c = p.center(NodeId(k));
                    // Either orientation must avoid overlap with some
                    // orientation of the other; conservatively test the
                    // smaller footprint (min dims as square) which is
                    // contained in both orientations.
                    let s = w.min(h);
                    (c, (s, s))
                };
                assert!(!overlap(rect(i), rect(j)), "cores {i} and {j} overlap");
            }
        }
    }

    #[test]
    fn area_is_at_least_sum_of_core_areas() {
        for n in [4usize, 9, 16] {
            let p = SlicingFloorplanner::new(unit_cores(n)).seed(11).run();
            assert!(p.chip_area_mm2() >= n as f64 - 1e-9);
        }
    }

    #[test]
    fn annealing_finds_near_square_arrangement() {
        // 16 unit tiles: optimum is a 4x4 square of area 16; accept <= 20.
        let p = SlicingFloorplanner::new(unit_cores(16)).seed(5).run();
        assert!(
            p.chip_area_mm2() <= 20.0,
            "area {} too far from optimal 16",
            p.chip_area_mm2()
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let a = SlicingFloorplanner::new(unit_cores(8)).seed(42).run();
        let b = SlicingFloorplanner::new(unit_cores(8)).seed(42).run();
        assert_eq!(a, b);
    }

    #[test]
    fn wirelength_pulls_connected_cores_together() {
        // Heavily connect cores 0 and 7; with the wirelength term their
        // distance should not exceed the unweighted placement's worst case.
        let conns = vec![(0usize, 7usize, 100.0)];
        let with = SlicingFloorplanner::new(unit_cores(8))
            .seed(9)
            .wirelength(0.5, conns)
            .run();
        let d_with = with.distance_mm(NodeId(0), NodeId(7));
        // They should end up closer than the chip diameter.
        assert!(d_with < with.max_distance_mm() + 1e-9);
        assert!(d_with <= 4.0, "weighted distance {d_with} too large");
    }

    #[test]
    fn cores_inside_chip_bounds() {
        let p = SlicingFloorplanner::new(unit_cores(10)).seed(2).run();
        for v in 0..10 {
            let (x, y) = p.center(NodeId(v));
            assert!(x >= 0.0 && x <= p.chip_width_mm());
            assert!(y >= 0.0 && y <= p.chip_height_mm());
        }
    }

    #[test]
    fn validity_checker_accepts_initial_expression() {
        let expr = vec![
            Element::Operand(0),
            Element::Operand(1),
            Element::V,
            Element::Operand(2),
            Element::H,
        ];
        assert!(is_valid_normalized(&expr));
        let bad = vec![Element::Operand(0), Element::H, Element::Operand(1)];
        assert!(!is_valid_normalized(&bad));
    }
}
