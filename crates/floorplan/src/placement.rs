//! Core blocks and finished placements.

use noc_graph::NodeId;

/// A hard rectangular IP block to be placed.
#[derive(Debug, Clone, PartialEq)]
pub struct Core {
    name: String,
    width_mm: f64,
    height_mm: f64,
}

impl Core {
    /// Creates a core with the given footprint.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is not strictly positive and finite.
    pub fn new(name: impl Into<String>, width_mm: f64, height_mm: f64) -> Self {
        assert!(
            width_mm > 0.0 && width_mm.is_finite(),
            "core width must be positive, got {width_mm}"
        );
        assert!(
            height_mm > 0.0 && height_mm.is_finite(),
            "core height must be positive, got {height_mm}"
        );
        Core {
            name: name.into(),
            width_mm,
            height_mm,
        }
    }

    /// The core's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Width in millimetres.
    pub fn width_mm(&self) -> f64 {
        self.width_mm
    }

    /// Height in millimetres.
    pub fn height_mm(&self) -> f64 {
        self.height_mm
    }

    /// Footprint area in mm².
    pub fn area_mm2(&self) -> f64 {
        self.width_mm * self.height_mm
    }

    /// The same core rotated by 90 degrees.
    #[must_use]
    pub fn rotated(&self) -> Core {
        Core {
            name: self.name.clone(),
            width_mm: self.height_mm,
            height_mm: self.width_mm,
        }
    }
}

/// How inter-core distances are measured.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DistanceMetric {
    /// Rectilinear (L1) distance — the default, matching Manhattan on-chip
    /// wire routing.
    #[default]
    Manhattan,
    /// Straight-line (L2) distance.
    Euclidean,
}

/// Finished placement: center coordinates for every core.
///
/// Link lengths for the energy model (Equation 1 of the paper) are
/// center-to-center distances under the chosen [`DistanceMetric`].
#[derive(Debug, Clone, PartialEq)]
pub struct Placement {
    centers: Vec<(f64, f64)>,
    chip_width_mm: f64,
    chip_height_mm: f64,
    metric: DistanceMetric,
}

impl Placement {
    /// Creates a placement from explicit core centers and chip bounds.
    ///
    /// # Panics
    ///
    /// Panics if any coordinate is non-finite or the chip dimensions are
    /// not positive.
    pub fn new(centers: Vec<(f64, f64)>, chip_width_mm: f64, chip_height_mm: f64) -> Self {
        assert!(
            chip_width_mm > 0.0 && chip_height_mm > 0.0,
            "chip must have positive size"
        );
        for &(x, y) in &centers {
            assert!(x.is_finite() && y.is_finite(), "coordinates must be finite");
        }
        Placement {
            centers,
            chip_width_mm,
            chip_height_mm,
            metric: DistanceMetric::default(),
        }
    }

    /// A regular `cols x rows` tile grid with the given tile pitch, the
    /// placement under a standard mesh NoC. Cores are numbered row-major:
    /// core `r * cols + c` sits at column `c`, row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `cols`, `rows` or the pitches are zero/non-positive.
    pub fn grid(cols: usize, rows: usize, pitch_x_mm: f64, pitch_y_mm: f64) -> Self {
        assert!(cols > 0 && rows > 0, "grid must be non-empty");
        assert!(
            pitch_x_mm > 0.0 && pitch_y_mm > 0.0,
            "pitch must be positive"
        );
        let centers = (0..rows)
            .flat_map(|r| {
                (0..cols)
                    .map(move |c| ((c as f64 + 0.5) * pitch_x_mm, (r as f64 + 0.5) * pitch_y_mm))
            })
            .collect();
        Placement {
            centers,
            chip_width_mm: cols as f64 * pitch_x_mm,
            chip_height_mm: rows as f64 * pitch_y_mm,
            metric: DistanceMetric::default(),
        }
    }

    /// Returns the placement with a different distance metric.
    #[must_use]
    pub fn with_metric(mut self, metric: DistanceMetric) -> Self {
        self.metric = metric;
        self
    }

    /// Number of placed cores.
    pub fn core_count(&self) -> usize {
        self.centers.len()
    }

    /// Center of core `v` in millimetres.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of bounds.
    pub fn center(&self, v: NodeId) -> (f64, f64) {
        self.centers[v.index()]
    }

    /// Chip width in millimetres.
    pub fn chip_width_mm(&self) -> f64 {
        self.chip_width_mm
    }

    /// Chip height in millimetres.
    pub fn chip_height_mm(&self) -> f64 {
        self.chip_height_mm
    }

    /// Chip bounding-box area in mm².
    pub fn chip_area_mm2(&self) -> f64 {
        self.chip_width_mm * self.chip_height_mm
    }

    /// The active distance metric.
    pub fn metric(&self) -> DistanceMetric {
        self.metric
    }

    /// Distance between the centers of cores `a` and `b` under the active
    /// metric; this is the link length fed to the energy model.
    ///
    /// # Panics
    ///
    /// Panics if either core is out of bounds.
    pub fn distance_mm(&self, a: NodeId, b: NodeId) -> f64 {
        let (ax, ay) = self.center(a);
        let (bx, by) = self.center(b);
        match self.metric {
            DistanceMetric::Manhattan => (ax - bx).abs() + (ay - by).abs(),
            DistanceMetric::Euclidean => ((ax - bx).powi(2) + (ay - by).powi(2)).sqrt(),
        }
    }

    /// The largest center-to-center distance on the chip.
    pub fn max_distance_mm(&self) -> f64 {
        let n = self.core_count();
        let mut best: f64 = 0.0;
        for a in 0..n {
            for b in (a + 1)..n {
                best = best.max(self.distance_mm(NodeId(a), NodeId(b)));
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn core_construction_and_rotation() {
        let c = Core::new("cpu", 2.0, 1.0);
        assert_eq!(c.name(), "cpu");
        assert_eq!(c.area_mm2(), 2.0);
        let r = c.rotated();
        assert_eq!(r.width_mm(), 1.0);
        assert_eq!(r.height_mm(), 2.0);
        assert_eq!(r.area_mm2(), c.area_mm2());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_width_core_panics() {
        Core::new("bad", 0.0, 1.0);
    }

    #[test]
    fn grid_places_row_major() {
        let p = Placement::grid(4, 4, 2.0, 2.0);
        assert_eq!(p.core_count(), 16);
        assert_eq!(p.center(NodeId(0)), (1.0, 1.0));
        assert_eq!(p.center(NodeId(3)), (7.0, 1.0));
        assert_eq!(p.center(NodeId(4)), (1.0, 3.0));
        assert_eq!(p.chip_area_mm2(), 64.0);
    }

    #[test]
    fn manhattan_vs_euclidean() {
        let p = Placement::grid(2, 2, 1.0, 1.0);
        // Diagonal neighbors: Manhattan 2.0, Euclidean sqrt(2).
        assert_eq!(p.distance_mm(NodeId(0), NodeId(3)), 2.0);
        let e = p.with_metric(DistanceMetric::Euclidean);
        assert!((e.distance_mm(NodeId(0), NodeId(3)) - 2.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn neighbor_distance_equals_pitch() {
        let p = Placement::grid(4, 4, 2.0, 3.0);
        assert_eq!(p.distance_mm(NodeId(0), NodeId(1)), 2.0); // horizontal
        assert_eq!(p.distance_mm(NodeId(0), NodeId(4)), 3.0); // vertical
    }

    #[test]
    fn max_distance_is_opposite_corners() {
        let p = Placement::grid(3, 3, 1.0, 1.0);
        assert_eq!(p.max_distance_mm(), 4.0); // (0.5,0.5) to (2.5,2.5), L1
    }

    #[test]
    fn explicit_placement() {
        let p = Placement::new(vec![(0.5, 0.5), (2.5, 0.5)], 3.0, 1.0);
        assert_eq!(p.core_count(), 2);
        assert_eq!(p.distance_mm(NodeId(0), NodeId(1)), 2.0);
        assert_eq!(p.metric(), DistanceMetric::Manhattan);
    }

    #[test]
    #[should_panic(expected = "positive size")]
    fn zero_chip_panics() {
        Placement::new(vec![], 0.0, 1.0);
    }
}
