//! Area-driven floorplanning for NoC synthesis.
//!
//! The DATE'05 decomposition algorithm "assume\[s\] that an initial
//! floorplanning step has been performed and optimized for chip area.
//! Hence, the core coordinates are given as inputs to the algorithm"
//! (Section 4). This crate provides that step:
//!
//! * [`Core`] — a hard rectangular block with physical dimensions;
//! * [`Placement`] — core center coordinates plus distance queries
//!   (Manhattan by default, matching rectilinear on-chip routing);
//! * [`SlicingFloorplanner`] — a classic Wong–Liu slicing-tree simulated
//!   annealing floorplanner minimizing chip area (optionally with a
//!   wirelength term weighted by communication volume);
//! * [`Placement::grid`] — the regular tile placement used for mesh
//!   baselines.
//!
//! # Example
//!
//! ```
//! use noc_floorplan::{Core, SlicingFloorplanner};
//!
//! let cores: Vec<Core> = (0..8).map(|i| Core::new(format!("c{i}"), 1.0, 1.0)).collect();
//! let plan = SlicingFloorplanner::new(cores).seed(7).run();
//! // 8 unit tiles must fit in their bounding box with zero overlap, so the
//! // chip area is at least 8 mm^2.
//! assert!(plan.chip_area_mm2() >= 8.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod placement;
mod slicing;

pub use placement::{Core, DistanceMetric, Placement};
pub use slicing::SlicingFloorplanner;
