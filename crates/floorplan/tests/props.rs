//! Property tests for the slicing floorplanner: legality invariants that
//! must hold for any core set and seed.

use noc_floorplan::{Core, DistanceMetric, Placement, SlicingFloorplanner};
use noc_graph::NodeId;
use proptest::prelude::*;

fn arb_cores() -> impl Strategy<Value = Vec<Core>> {
    proptest::collection::vec((5u32..30, 5u32..30), 2..9).prop_map(|dims| {
        dims.into_iter()
            .enumerate()
            .map(|(i, (w, h))| Core::new(format!("c{i}"), w as f64 / 10.0, h as f64 / 10.0))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Chip area is at least the sum of core areas (no overlap possible in
    /// a slicing floorplan) and all centers lie inside the chip.
    #[test]
    fn area_and_bounds(cores in arb_cores(), seed in 0u64..50) {
        let total: f64 = cores.iter().map(Core::area_mm2).sum();
        let plan = SlicingFloorplanner::new(cores.clone()).seed(seed).run();
        prop_assert!(plan.chip_area_mm2() >= total - 1e-9);
        for i in 0..cores.len() {
            let (x, y) = plan.center(NodeId(i));
            prop_assert!(x > 0.0 && x < plan.chip_width_mm());
            prop_assert!(y > 0.0 && y < plan.chip_height_mm());
        }
    }

    /// Pairwise: cores never overlap (conservative check via the smaller
    /// orientation-independent footprint).
    #[test]
    fn no_overlap(cores in arb_cores(), seed in 0u64..50) {
        let plan = SlicingFloorplanner::new(cores.clone()).seed(seed).run();
        for i in 0..cores.len() {
            for j in (i + 1)..cores.len() {
                let (xi, yi) = plan.center(NodeId(i));
                let (xj, yj) = plan.center(NodeId(j));
                // Minimum feasible separation: half the smaller dimension of
                // each block (valid under any rotation).
                let si = cores[i].width_mm().min(cores[i].height_mm()) / 2.0;
                let sj = cores[j].width_mm().min(cores[j].height_mm()) / 2.0;
                let sep_x = (xi - xj).abs();
                let sep_y = (yi - yj).abs();
                prop_assert!(
                    sep_x + 1e-9 >= si + sj || sep_y + 1e-9 >= si + sj,
                    "cores {i} and {j} too close: d=({sep_x:.3},{sep_y:.3})"
                );
            }
        }
    }

    /// Same seed, same placement; distance metric is symmetric and obeys
    /// the triangle inequality under Manhattan.
    #[test]
    fn determinism_and_metric(cores in arb_cores(), seed in 0u64..50) {
        let a = SlicingFloorplanner::new(cores.clone()).seed(seed).run();
        let b = SlicingFloorplanner::new(cores.clone()).seed(seed).run();
        prop_assert_eq!(&a, &b);
        let n = cores.len();
        for i in 0..n {
            for j in 0..n {
                let dij = a.distance_mm(NodeId(i), NodeId(j));
                prop_assert!((dij - a.distance_mm(NodeId(j), NodeId(i))).abs() < 1e-12);
                if i == j {
                    prop_assert_eq!(dij, 0.0);
                }
                for k in 0..n {
                    let dik = a.distance_mm(NodeId(i), NodeId(k));
                    let dkj = a.distance_mm(NodeId(k), NodeId(j));
                    prop_assert!(dij <= dik + dkj + 1e-9);
                }
            }
        }
    }

    /// Euclidean distance never exceeds Manhattan.
    #[test]
    fn euclidean_below_manhattan(cores in arb_cores(), seed in 0u64..50) {
        let manhattan = SlicingFloorplanner::new(cores.clone()).seed(seed).run();
        let euclid = manhattan.clone().with_metric(DistanceMetric::Euclidean);
        for i in 0..cores.len() {
            for j in 0..cores.len() {
                prop_assert!(
                    euclid.distance_mm(NodeId(i), NodeId(j))
                        <= manhattan.distance_mm(NodeId(i), NodeId(j)) + 1e-12
                );
            }
        }
    }

    /// Grid placements: the distance between any two tiles equals the
    /// Manhattan distance of their grid coordinates times the pitch.
    #[test]
    fn grid_distances_exact(cols in 1usize..6, rows in 1usize..6, pitch in 1u32..5) {
        let pitch = pitch as f64;
        let p = Placement::grid(cols, rows, pitch, pitch);
        for a in 0..cols * rows {
            for b in 0..cols * rows {
                let (ax, ay) = (a % cols, a / cols);
                let (bx, by) = (b % cols, b / cols);
                let expect = pitch
                    * ((ax as f64 - bx as f64).abs() + (ay as f64 - by as f64).abs());
                prop_assert!(
                    (p.distance_mm(NodeId(a), NodeId(b)) - expect).abs() < 1e-9
                );
            }
        }
    }
}
