//! Design-space exploration campaigns from the command line.
//!
//! Usage:
//!
//! ```text
//! explore [--smoke | --full] [--threads N] [--out PATH] [--stream]
//! ```
//!
//! * `--smoke` (default) — the CI grid: 12 scenario points over 3 small
//!   workloads, finishing in seconds. Runs the campaign **twice** —
//!   sequentially and on one worker per hardware thread — and asserts the
//!   Pareto fronts are identical, so every CI run exercises the campaign
//!   determinism guarantee end to end.
//! * `--full` — a larger grid: TGFF and Pajek size sweeps × two synthesis
//!   objectives × two technologies with a load ramp per point.
//! * `--threads N` — campaign worker threads (`0` = one per hardware
//!   thread; default).
//! * `--out PATH` — where to write the JSON campaign report
//!   (default `EXPLORE_report.json`).
//! * `--stream` — additionally stream each completed point to stdout as
//!   JSON Lines.

use std::process::ExitCode;

use noc::prelude::*;
use noc_explore::prelude::*;
use noc_explore::NullSink;

fn full_grid() -> ScenarioGrid {
    ScenarioGrid::new()
        .workloads([
            WorkloadSpec::fixed(WorkloadFamily::Fig5),
            WorkloadSpec::fixed(WorkloadFamily::Automotive),
            WorkloadSpec::fixed(WorkloadFamily::Multimedia),
        ])
        .workload_family(WorkloadFamily::Tgff, [8, 12, 15], [1, 2])
        .workload_family(WorkloadFamily::PajekPlanted, [10, 16], [1, 2])
        .synthesis_objectives([Objective::Links, Objective::Energy])
        .technologies([
            TechnologyProfile::cmos_180nm(),
            TechnologyProfile::cmos_100nm(),
        ])
        .sims([SimSpec {
            label: "ramp".into(),
            rates: vec![0.05, 0.15, 0.30, 0.45],
            duration_cycles: 300,
            saturation_cutoff: Some(6.0),
            ..SimSpec::default()
        }])
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = true;
    let mut threads = 0usize;
    let mut out = "EXPLORE_report.json".to_string();
    let mut stream = false;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--full" => smoke = false,
            "--stream" => stream = true,
            "--threads" => match iter.next().and_then(|v| v.parse().ok()) {
                Some(n) => threads = n,
                None => return usage("--threads needs an integer"),
            },
            "--out" => match iter.next() {
                Some(path) => out = path.clone(),
                None => return usage("--out needs a path"),
            },
            other => return usage(&format!("unknown argument '{other}'")),
        }
    }

    let grid = if smoke {
        ScenarioGrid::smoke()
    } else {
        full_grid()
    };
    println!(
        "campaign: {} scenario points ({} mode), {} worker thread(s)",
        grid.len(),
        if smoke { "smoke" } else { "full" },
        if threads == 0 {
            "hw".to_string()
        } else {
            threads.to_string()
        },
    );

    let campaign = Campaign::new(grid).threads(threads);
    let report = if stream {
        let mut sink = JsonLinesSink::new(std::io::stdout(), ObjectiveKind::DEFAULT.to_vec());
        campaign.run_with_sink(&mut sink)
    } else {
        campaign.run_with_sink(&mut NullSink)
    };

    if smoke {
        // The acceptance gate: a multi-threaded campaign must produce a
        // front identical to the sequential run on the same grid.
        let sequential = Campaign::new(ScenarioGrid::smoke()).threads(1).run();
        assert_eq!(
            report.front, sequential.front,
            "parallel front diverged from sequential"
        );
        for (a, b) in report.points.iter().zip(&sequential.points) {
            assert_eq!(a.objectives, b.objectives, "point {} diverged", a.label);
        }
        println!("determinism check: parallel front == sequential front");
    }

    let failed = report.points.iter().filter(|p| p.error.is_some()).count();
    println!(
        "{} synthesized, {} reused, {} failed, {:.0} ms wall",
        report.flows_synthesized, report.synthesis_reused, failed, report.wall_ms
    );
    println!(
        "pareto front ({} of {} points):",
        report.front.len(),
        report.points.len()
    );
    for point in report.front_points() {
        println!(
            "  {:<48} energy {:>10.2} pJ  latency {:>7.2} cyc  area {:>6.1} mm2",
            point.label,
            point.objectives[0] * 1e12,
            point.objectives[1],
            point.objectives[2],
        );
    }

    if let Err(e) = std::fs::write(&out, report.to_json()) {
        eprintln!("failed to write {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {out}");
    ExitCode::SUCCESS
}

fn usage(problem: &str) -> ExitCode {
    eprintln!("error: {problem}");
    eprintln!("usage: explore [--smoke | --full] [--threads N] [--out PATH] [--stream]");
    ExitCode::from(2)
}
