//! Design-space exploration campaigns from the command line: run, resume,
//! shard, merge, and coordinate worker fleets.
//!
//! Usage:
//!
//! ```text
//! explore [run] [--smoke | --full] [--threads N] [--out PATH] [--stream]
//!               [--resume PATH] [--cache PATH] [--trace PATH]
//! explore sample --budget N [--policy bandit|halving] [--seed S]
//!               [--smoke | --full] [--threads N] [--out PATH] [--stream]
//!               [--trace PATH]
//! explore shard --index I --of K [--mode modulo|range]
//!               [--smoke | --full] [--threads N] [--out PATH] [--stream]
//!               [--cache PATH]
//! explore merge --out PATH REPORT...
//! explore coordinate --workers N [--deadline SECS] [--cache PATH]
//!               [--work-dir DIR] [--chaos-kill-first] [--verbose]
//!               [--smoke | --full] [--threads N] [--out PATH] [--trace PATH]
//! explore worker --ids I,J,... --stream-out PATH --out PATH
//!               [--cache-in PATH] [--cache-out PATH] [--stall-ms MS]
//!               [--smoke | --full] [--threads N]
//! explore verify [--smoke | --full] [--threads N] [--out PATH]
//!               [--chaos-cyclic] [REPORT]
//! explore events [--summarize] PATH
//! ```
//!
//! * `run` (default subcommand) — plan and execute a grid. With
//!   `--resume PATH` the campaign first loads a prior report (full JSON or
//!   a JSON-Lines stream left behind by a killed run), skips every
//!   scenario it already records, and folds old + new points into one
//!   front — incremental, crash-safe campaigns.
//! * `sample` — adaptive **budgeted** sampling: evaluate at most
//!   `--budget N` scenario points of the grid, chosen round-by-round by
//!   the `--policy` planner (ε-greedy `bandit` over grid-axis arms, or
//!   successive `halving` promoting arms whose points land on the front)
//!   with a deterministic seeded scenario sequence (`--seed`, default 1).
//!   With `--smoke` this is a CI acceptance gate: the budgeted run must
//!   reach ≥ 90% of the full smoke grid's hypervolume while evaluating
//!   fewer points (whenever the budget is below the grid size).
//! * `shard` — run only shard `I` of a `K`-way partition of the grid
//!   (`--mode range` keeps synthesis-sharing neighbors together, the
//!   default; `--mode modulo` interleaves). Shard reports merge back into
//!   exactly the single-shot front.
//! * `merge` — re-fold previously written shard reports into one report
//!   (permutation-invariant: any order, any grouping).
//! * `coordinate` — the closed distributed loop: spawn `--workers N`
//!   worker *processes* (this same binary, `worker` subcommand), deal
//!   each a slice of the grid, watch their artifacts land under
//!   `--work-dir`, kill stragglers at `--deadline` and re-deal exactly
//!   their unfinished scenario ids, then merge everything into one
//!   report. With `--cache PATH` every worker warm-starts its VF2 match
//!   cache from the persisted file and the coordinator folds the grown
//!   caches back between waves. `--chaos-kill-first` injects the CI
//!   fault: worker 0 is stalled and killed mid-stream, proving the
//!   salvage + re-deal path converges to the exact single-shot front.
//! * `worker` — one coordinated worker: run exactly the `--ids` slice,
//!   streaming each point to `--stream-out` (the salvage artifact) and
//!   finishing with a report at `--out`. Not usually typed by hand, but
//!   it is a stable wire format — any fleet scheduler can exec it.
//! * `--smoke` (default grid) — the CI grid: 12 scenario points over 3
//!   small workloads. In `run` mode (without `--resume`) this is the CI
//!   acceptance gate: it additionally proves the **three-way front
//!   equality** (single-shot == kill/resume == shard+merge, sequential and
//!   parallel) and that the campaign-wide match cache served several graph
//!   sizes with cross-size hits.
//! * `--full` — a larger grid: TGFF and Pajek size sweeps × two synthesis
//!   objectives × two technologies with a load ramp per point.
//! * `--credit` — double the grid with a router-fidelity axis: every
//!   scenario runs under both the ideal wormhole router and the
//!   credit-based pipelined router (`RouterFidelity::Credit`), labeled
//!   `.../credit` in reports (schema v5 `router_fidelity` field). The
//!   smoke acceptance gates compare against the plain smoke grid, so
//!   they are skipped under `--credit`.
//! * `--threads N` — campaign worker threads (`0` = one per hardware
//!   thread; default).
//! * `--out PATH` — where to write the JSON campaign report
//!   (default `EXPLORE_report.json`).
//! * `--stream` — additionally stream each completed point to stdout as
//!   JSON Lines (the resumable crash artifact: `explore --stream >
//!   points.jsonl`, then `--resume points.jsonl` after a kill). All
//!   human-readable progress text moves to stderr so the captured stream
//!   stays pure JSON Lines.
//! * `--trace PATH` (`run`, `sample`, `coordinate`) — record the
//!   structured telemetry event stream (spans, counters, lifecycle
//!   events — see the `noc-telemetry` crate) and write it to `PATH` as
//!   JSON Lines when the main campaign finishes. The trace covers the
//!   requested campaign only, not the smoke acceptance gates that re-run
//!   extra in-process campaigns afterwards. Under `coordinate` the trace
//!   holds the coordinator's wave lifecycle (deal/complete/kill/salvage/
//!   re-deal) — worker processes run untraced.
//! * `verify` — static deadlock analysis over an existing report
//!   (default `EXPLORE_report.json`): re-synthesize each synthesis key of
//!   the grid, run the `noc-verify` extended-CDG pass, write a fresh
//!   verdict into every point, and rewrite the report (to `--out`, or in
//!   place). Exits nonzero when any architecture fails verification,
//!   printing its witness cycle. `--chaos-cyclic` is the CI fault
//!   injection: verify a deliberately cyclic 2x2 routing table instead,
//!   succeeding only when the verifier *rejects* it with a concrete
//!   channel-cycle witness.
//! * `events [--summarize] PATH` — read a trace back: validate it and
//!   report its size, or render the phase-time/counter table with
//!   `--summarize`.
//! * `coordinate --verbose` — narrate wave lifecycle to stderr live.

use std::process::ExitCode;

use noc::prelude::*;
use noc_explore::coordinate::{
    coordinate, run_worker, ChaosKill, CoordinatorConfig, ProcessTransport, WorkerAssignment,
    CACHE_CAPACITY,
};
use noc_explore::prelude::*;
use noc_explore::{NullSink, WarmCacheRecord};

/// Human-readable progress text. With `--stream` active, stdout carries
/// the machine-readable JSON Lines records (the resumable crash
/// artifact), so prose must go to stderr — interleaving would corrupt a
/// captured stream.
macro_rules! note {
    ($stream:expr, $($arg:tt)*) => {
        if $stream {
            eprintln!($($arg)*)
        } else {
            println!($($arg)*)
        }
    };
}

fn full_grid() -> ScenarioGrid {
    ScenarioGrid::new()
        .workloads([
            WorkloadSpec::fixed(WorkloadFamily::Fig5),
            WorkloadSpec::fixed(WorkloadFamily::Automotive),
            WorkloadSpec::fixed(WorkloadFamily::Multimedia),
        ])
        .workload_family(WorkloadFamily::Tgff, [8, 12, 15], [1, 2])
        .workload_family(WorkloadFamily::PajekPlanted, [10, 16], [1, 2])
        .synthesis_objectives([Objective::Links, Objective::Energy])
        .technologies([
            TechnologyProfile::cmos_180nm(),
            TechnologyProfile::cmos_100nm(),
        ])
        .sims([SimSpec {
            label: "ramp".into(),
            rates: vec![0.05, 0.15, 0.30, 0.45],
            duration_cycles: 300,
            saturation_cutoff: Some(6.0),
            ..SimSpec::default()
        }])
}

/// The grid the flags select: smoke or full, optionally crossed with the
/// router-fidelity axis.
fn grid_for(common: &CommonArgs) -> ScenarioGrid {
    let grid = if common.smoke {
        ScenarioGrid::smoke()
    } else {
        full_grid()
    };
    if common.credit {
        grid.router_fidelities([
            RouterFidelity::Ideal,
            RouterFidelity::Credit(CreditConfig::default()),
        ])
    } else {
        grid
    }
}

#[derive(Default)]
struct CommonArgs {
    smoke: bool,
    /// Add the credit-router fidelity axis to the grid (`--credit`).
    credit: bool,
    threads: usize,
    out: String,
    stream: bool,
    /// Persistent warm-start match-cache file (`--cache`), honored by
    /// `run` and `shard`; `coordinate` parses its own `--cache` (the
    /// coordinator owns the file), and `sample` rejects it.
    cache: Option<String>,
    /// Telemetry trace output (`--trace`), honored by `run`, `sample`
    /// and `coordinate`.
    trace: Option<String>,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (subcommand, rest) = match args.first().map(String::as_str) {
        Some("shard") => ("shard", &args[1..]),
        Some("merge") => ("merge", &args[1..]),
        Some("sample") => ("sample", &args[1..]),
        Some("coordinate") => ("coordinate", &args[1..]),
        Some("worker") => ("worker", &args[1..]),
        Some("verify") => ("verify", &args[1..]),
        Some("events") => ("events", &args[1..]),
        Some("run") => ("run", &args[1..]),
        _ => ("run", &args[..]),
    };
    match subcommand {
        "merge" => merge_command(rest),
        "shard" => shard_command(rest),
        "sample" => sample_command(rest),
        "coordinate" => coordinate_command(rest),
        "worker" => worker_command(rest),
        "verify" => verify_command(rest),
        "events" => events_command(rest),
        _ => run_command(rest),
    }
}

fn parse_common(
    arg: &str,
    iter: &mut std::slice::Iter<'_, String>,
    common: &mut CommonArgs,
) -> Result<bool, ExitCode> {
    match arg {
        "--smoke" => common.smoke = true,
        "--full" => common.smoke = false,
        "--credit" => common.credit = true,
        "--stream" => common.stream = true,
        "--threads" => match iter.next().and_then(|v| v.parse().ok()) {
            Some(n) => common.threads = n,
            None => return Err(usage("--threads needs an integer")),
        },
        "--out" => match iter.next() {
            Some(path) => common.out = path.clone(),
            None => return Err(usage("--out needs a path")),
        },
        "--cache" => match iter.next() {
            Some(path) => common.cache = Some(path.clone()),
            None => return Err(usage("--cache needs a path")),
        },
        "--trace" => match iter.next() {
            Some(path) => common.trace = Some(path.clone()),
            None => return Err(usage("--trace needs a path")),
        },
        _ => return Ok(false),
    }
    Ok(true)
}

fn run_command(args: &[String]) -> ExitCode {
    let mut common = CommonArgs {
        smoke: true,
        out: "EXPLORE_report.json".into(),
        ..CommonArgs::default()
    };
    let mut resume: Option<String> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match parse_common(arg, &mut iter, &mut common) {
            Ok(true) => continue,
            Err(code) => return code,
            Ok(false) => {}
        }
        match arg.as_str() {
            "--resume" => match iter.next() {
                Some(path) => resume = Some(path.clone()),
                None => return usage("--resume needs a path"),
            },
            other => return usage(&format!("unknown argument '{other}'")),
        }
    }

    let grid = grid_for(&common);
    let campaign = Campaign::new(grid.clone()).threads(common.threads);

    let prior = match &resume {
        None => None,
        Some(path) => match load_report(path) {
            Ok(report) => Some(report),
            Err(e) => {
                eprintln!("error: cannot resume from {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
    };
    let plan = match &prior {
        None => campaign.plan(),
        Some(prior) => match campaign.plan_resume(prior) {
            Ok(plan) => plan,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        },
    };
    note!(
        common.stream,
        "campaign: {} of {} scenario points to run ({} carried), {} mode, {} worker thread(s)",
        plan.to_run(),
        plan.grid_len(),
        plan.carried(),
        if common.smoke { "smoke" } else { "full" },
        thread_label(common.threads),
    );

    let tel = install_trace(&common);
    let report = execute(&campaign, plan, common.stream, common.cache.as_ref());
    write_trace(&common, tel, common.stream);

    // The acceptance gates run on a fresh smoke campaign only: a resume
    // must never cost a full re-run just to check itself (CI asserts the
    // resumed front against the single-shot report externally).
    if common.smoke && !common.credit && prior.is_none() {
        smoke_gates(&campaign, &report, common.stream);
    }

    print_summary(&report, common.stream);
    write_report(&common.out, &report, common.stream)
}

fn sample_command(args: &[String]) -> ExitCode {
    let mut common = CommonArgs {
        smoke: true,
        out: "EXPLORE_sampled.json".into(),
        ..CommonArgs::default()
    };
    let mut budget: Option<usize> = None;
    let mut policy = SamplerPolicy::DEFAULT_BANDIT;
    let mut seed = 1u64;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match parse_common(arg, &mut iter, &mut common) {
            Ok(true) => continue,
            Err(code) => return code,
            Ok(false) => {}
        }
        match arg.as_str() {
            "--budget" => match iter.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => budget = Some(n),
                _ => return usage("--budget needs a positive integer"),
            },
            "--policy" => match iter.next().and_then(|p| SamplerPolicy::from_label(p)) {
                Some(p) => policy = p,
                None => return usage("--policy must be 'bandit' or 'halving'"),
            },
            "--seed" => match iter.next().and_then(|v| v.parse().ok()) {
                Some(s) => seed = s,
                None => return usage("--seed needs an integer"),
            },
            other => return usage(&format!("unknown argument '{other}'")),
        }
    }
    let Some(budget) = budget else {
        return usage("sample needs --budget N");
    };
    if common.cache.is_some() {
        return usage("sample does not support --cache (the sampler recreates its cache per run)");
    }

    let grid = grid_for(&common);
    let campaign = Campaign::new(grid).threads(common.threads);
    let config = SamplerConfig::new(budget).policy(policy).seed(seed);
    note!(
        common.stream,
        "sampled campaign: budget {} of {} grid points, {} policy, seed {}, {} worker thread(s)",
        budget,
        campaign.plan().grid_len(),
        policy.label(),
        seed,
        thread_label(common.threads),
    );
    let tel = install_trace(&common);
    let report = if common.stream {
        let mut sink = JsonLinesSink::new(std::io::stdout(), ObjectiveKind::DEFAULT.to_vec());
        campaign.run_sampled_with_sink(&config, &mut sink)
    } else {
        campaign.run_sampled(&config)
    };
    write_trace(&common, tel, common.stream);

    let provenance = report.sampler.as_ref().expect("sampled report provenance");
    for round in &provenance.rounds {
        note!(
            common.stream,
            "round {}: {} flow(s), hypervolume {:.6}, arms [{}]",
            round.round,
            round.flows,
            round.hypervolume,
            round.arms.join(", "),
        );
    }

    // The CI acceptance gate: on the smoke grid, a budgeted run must hold
    // ≥ 90% of the exhaustive front's hypervolume — with strictly fewer
    // evaluated flows whenever the budget is below the grid size.
    if common.smoke {
        let full = Campaign::new(grid_for(&common))
            .threads(common.threads)
            .run();
        assert!(
            report.hypervolume >= 0.9 * full.hypervolume,
            "sampled hypervolume {} fell below 90% of the full grid's {}",
            report.hypervolume,
            full.hypervolume
        );
        assert!(
            provenance.flows_spent <= provenance.budget,
            "sampler overspent its budget"
        );
        if budget < provenance.grid_len {
            assert!(
                provenance.flows_spent < provenance.grid_len,
                "budget below grid size must evaluate fewer points"
            );
        }
        note!(
            common.stream,
            "sampling gate: {:.2}% of full-grid hypervolume with {} of {} flows",
            100.0 * report.hypervolume / full.hypervolume,
            provenance.flows_spent,
            provenance.grid_len,
        );
    }

    print_summary(&report, common.stream);
    write_report(&common.out, &report, common.stream)
}

fn shard_command(args: &[String]) -> ExitCode {
    let mut common = CommonArgs {
        smoke: true,
        out: String::new(),
        ..CommonArgs::default()
    };
    let mut index: Option<usize> = None;
    let mut count: Option<usize> = None;
    let mut mode = ShardMode::Range;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match parse_common(arg, &mut iter, &mut common) {
            Ok(true) => continue,
            Err(code) => return code,
            Ok(false) => {}
        }
        match arg.as_str() {
            "--index" => match iter.next().and_then(|v| v.parse().ok()) {
                Some(i) => index = Some(i),
                None => return usage("--index needs an integer"),
            },
            "--of" => match iter.next().and_then(|v| v.parse().ok()) {
                Some(k) => count = Some(k),
                None => return usage("--of needs an integer"),
            },
            "--mode" => match iter.next().and_then(|m| ShardMode::from_label(m)) {
                Some(m) => mode = m,
                None => return usage("--mode must be 'modulo' or 'range'"),
            },
            other => return usage(&format!("unknown argument '{other}'")),
        }
    }
    let (Some(index), Some(count)) = (index, count) else {
        return usage("shard needs --index I and --of K");
    };
    if index >= count {
        return usage(&format!("--index {index} out of range for --of {count}"));
    }
    let manifest = ShardManifest::new(index, count, mode);
    if common.out.is_empty() {
        common.out = format!("EXPLORE_shard_{index}_of_{count}.json");
    }

    let grid = grid_for(&common);
    let campaign = Campaign::new(grid).threads(common.threads);
    let plan = campaign.plan_shard(&manifest);
    note!(
        common.stream,
        "{}: {} of {} scenario points, {} worker thread(s)",
        manifest.label(),
        plan.to_run(),
        plan.grid_len(),
        thread_label(common.threads),
    );
    let report = execute(&campaign, plan, common.stream, common.cache.as_ref());
    print_summary(&report, common.stream);
    write_report(&common.out, &report, common.stream)
}

fn coordinate_command(args: &[String]) -> ExitCode {
    let mut common = CommonArgs {
        smoke: true,
        out: "EXPLORE_coordinated.json".into(),
        ..CommonArgs::default()
    };
    let mut workers: Option<usize> = None;
    let mut deadline_secs = 60.0f64;
    let mut work_dir = "EXPLORE_coordinate".to_string();
    let mut chaos = false;
    let mut verbose = false;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match parse_common(arg, &mut iter, &mut common) {
            Ok(true) => continue,
            Err(code) => return code,
            Ok(false) => {}
        }
        match arg.as_str() {
            "--workers" => match iter.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => workers = Some(n),
                _ => return usage("--workers needs a positive integer"),
            },
            "--deadline" => match iter.next().and_then(|v| v.parse().ok()) {
                Some(s) if s > 0.0 => deadline_secs = s,
                _ => return usage("--deadline needs a positive number of seconds"),
            },
            "--work-dir" => match iter.next() {
                Some(dir) => work_dir = dir.clone(),
                None => return usage("--work-dir needs a path"),
            },
            "--chaos-kill-first" => chaos = true,
            "--verbose" => verbose = true,
            other => return usage(&format!("unknown argument '{other}'")),
        }
    }
    let Some(workers) = workers else {
        return usage("coordinate needs --workers N");
    };
    let cache = common.cache.clone();

    let grid = grid_for(&common);
    let campaign = Campaign::new(grid).threads(common.threads);
    let mut config = CoordinatorConfig::new(workers)
        .deadline(std::time::Duration::from_secs_f64(deadline_secs))
        .work_dir(&work_dir)
        .verbose(verbose);
    if let Some(cache) = &cache {
        config = config.cache_path(cache);
    }
    if chaos {
        config = config.chaos(ChaosKill::first_worker());
    }

    // Workers are this very binary, re-invoked with the worker
    // subcommand and the same grid/thread flags.
    let program = match std::env::current_exe() {
        Ok(path) => path,
        Err(e) => {
            eprintln!("error: cannot locate own binary: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut base_args = vec![if common.smoke { "--smoke" } else { "--full" }.to_string()];
    if common.credit {
        base_args.push("--credit".into());
    }
    if common.threads != 0 {
        base_args.push("--threads".into());
        base_args.push(common.threads.to_string());
    }
    let mut transport = ProcessTransport::new(program, base_args);

    println!(
        "coordinating {} worker(s) over {} scenario points, deadline {deadline_secs} s{}{}",
        workers,
        campaign.plan().grid_len(),
        match &cache {
            Some(path) => format!(", cache {path}"),
            None => String::new(),
        },
        if chaos { ", chaos: kill worker 0" } else { "" },
    );
    let tel = install_trace(&common);
    let report = match coordinate(&campaign, &config, &mut transport) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    write_trace(&common, tel, false);

    let provenance = report.coordinator.as_ref().expect("coordinator provenance");
    for wave in &provenance.waves {
        println!(
            "wave {}: {} worker(s), {} completed, {} killed, {} point(s) salvaged, {} id(s) re-dealt",
            wave.wave, wave.workers, wave.completed, wave.killed, wave.salvaged_points, wave.redealt,
        );
    }
    if let Some(warm) = &report.warm_cache {
        let warm_hits: u64 = report.match_cache.iter().map(|c| c.warm_hits).sum();
        println!(
            "warm cache {}: {} graph(s) loaded, {} saved, {} warm hit(s){}",
            warm.path,
            warm.loaded_graphs,
            warm.saved_graphs,
            warm_hits,
            match &warm.degraded {
                Some(reason) => format!(" (degraded to cold start: {reason})"),
                None => String::new(),
            },
        );
    }

    // The CI acceptance gate: whatever died on the way, the merged front
    // must be the single-shot front — and the injected kill must actually
    // have exercised the salvage + re-deal + warm-restart path.
    if common.smoke {
        let single = Campaign::new(grid_for(&common))
            .threads(common.threads)
            .run();
        assert_eq!(
            report.front, single.front,
            "coordinated front diverged from single-shot"
        );
        assert_eq!(report.hypervolume, single.hypervolume);
        assert_eq!(report.points.len(), single.points.len());
        for (a, b) in report.points.iter().zip(&single.points) {
            assert_eq!(a.objectives, b.objectives, "point {} diverged", a.label);
        }
        if chaos {
            assert!(provenance.killed() >= 1, "chaos killed no worker");
            assert!(
                provenance.redealt() >= 1,
                "the killed worker left nothing to re-deal"
            );
            assert!(
                provenance.waves.len() >= 2,
                "re-dealing must take a second wave"
            );
            if cache.is_some() {
                let warm_hits: u64 = report.match_cache.iter().map(|c| c.warm_hits).sum();
                assert!(
                    warm_hits > 0,
                    "re-dealt worker warm-started from the persisted cache but reported no warm hits: {:?}",
                    report.match_cache
                );
            }
        }
        println!("coordination gate: merged front == single-shot front");
    }

    print_summary(&report, false);
    write_report(&common.out, &report, false)
}

fn worker_command(args: &[String]) -> ExitCode {
    let mut common = CommonArgs {
        smoke: true,
        ..CommonArgs::default()
    };
    let mut ids: Option<Vec<usize>> = None;
    let mut stream_out: Option<String> = None;
    let mut cache_in: Option<String> = None;
    let mut cache_out: Option<String> = None;
    let mut stall_ms = 0u64;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match parse_common(arg, &mut iter, &mut common) {
            Ok(true) => continue,
            Err(code) => return code,
            Ok(false) => {}
        }
        match arg.as_str() {
            "--ids" => {
                let parsed: Option<Vec<usize>> = iter
                    .next()
                    .map(|csv| csv.split(',').map(|id| id.trim().parse().ok()).collect())
                    .unwrap_or(None);
                match parsed {
                    Some(list) if !list.is_empty() => ids = Some(list),
                    _ => return usage("--ids needs a comma-separated id list"),
                }
            }
            "--stream-out" => match iter.next() {
                Some(path) => stream_out = Some(path.clone()),
                None => return usage("--stream-out needs a path"),
            },
            "--cache-in" => match iter.next() {
                Some(path) => cache_in = Some(path.clone()),
                None => return usage("--cache-in needs a path"),
            },
            "--cache-out" => match iter.next() {
                Some(path) => cache_out = Some(path.clone()),
                None => return usage("--cache-out needs a path"),
            },
            "--stall-ms" => match iter.next().and_then(|v| v.parse().ok()) {
                Some(ms) => stall_ms = ms,
                None => return usage("--stall-ms needs an integer"),
            },
            other => return usage(&format!("unknown argument '{other}'")),
        }
    }
    let (Some(ids), Some(stream_out)) = (ids, stream_out) else {
        return usage("worker needs --ids and --stream-out");
    };
    if common.cache.is_some() {
        return usage("worker takes --cache-in/--cache-out, not --cache");
    }
    if common.out.is_empty() {
        return usage("worker needs --out");
    }

    let grid = grid_for(&common);
    let campaign = Campaign::new(grid).threads(common.threads);
    let assignment = WorkerAssignment {
        ordinal: 0,
        wave: 0,
        ids,
        stream_path: stream_out.into(),
        report_path: common.out.clone().into(),
        cache_in: cache_in.map(Into::into),
        cache_out: cache_out.map(Into::into),
        stall_per_point_ms: stall_ms,
    };
    match run_worker(&campaign, &assignment) {
        Ok(report) => {
            eprintln!(
                "worker: {} point(s) done, report at {}",
                report.points.len(),
                common.out
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn verify_command(args: &[String]) -> ExitCode {
    let mut common = CommonArgs {
        smoke: true,
        ..CommonArgs::default()
    };
    let mut chaos_cyclic = false;
    let mut report_path: Option<String> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match parse_common(arg, &mut iter, &mut common) {
            Ok(true) => continue,
            Err(code) => return code,
            Ok(false) => {}
        }
        match arg.as_str() {
            "--chaos-cyclic" => chaos_cyclic = true,
            path if !path.starts_with("--") => report_path = Some(path.to_string()),
            other => return usage(&format!("unknown argument '{other}'")),
        }
    }
    if chaos_cyclic {
        return chaos_cyclic_gate();
    }

    let path = report_path.unwrap_or_else(|| "EXPLORE_report.json".into());
    let out = if common.out.is_empty() {
        path.clone()
    } else {
        common.out.clone()
    };
    let mut report = match load_report(&path) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("error: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let grid = grid_for(&common);
    let campaign = Campaign::new(grid).threads(common.threads);
    let summary = match campaign.verify_report(&mut report) {
        Ok(summary) => summary,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("{summary}");
    for &id in &summary.failed {
        let point = report.point(id).expect("failed id names a report point");
        let verify = point
            .verify
            .as_ref()
            .expect("failed point carries a verdict");
        println!("  NOT VERIFIED {} — {}", point.label, verify.summary());
        for edge in &verify.cycle {
            println!("    {edge}");
        }
        for lint in &verify.lint {
            println!("    {lint}");
        }
    }
    if write_report(&out, &report, false) == ExitCode::FAILURE {
        return ExitCode::FAILURE;
    }
    if summary.all_clear() {
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "error: {} point(s) record measurements of unverified architectures",
            summary.failed.len()
        );
        ExitCode::FAILURE
    }
}

/// The `verify --chaos-cyclic` CI fault injection: a 2x2 mesh whose four
/// routes close a turnaround cycle on one VC — the verifier must reject
/// it and name the cycle. Succeeding on a planted fault proves the gate
/// can actually fail.
fn chaos_cyclic_gate() -> ExitCode {
    use std::collections::BTreeMap;

    let topology = DiGraph::from_edges(
        4,
        [
            (0, 1),
            (1, 0),
            (0, 2),
            (2, 0),
            (1, 3),
            (3, 1),
            (2, 3),
            (3, 2),
        ],
    )
    .expect("2x2 mesh");
    // Each route alone is legal; together they chain the four channels
    // c(0,2) -> c(2,3) -> c(3,1) -> c(1,0) -> c(0,2) into a cycle.
    let routes: BTreeMap<(NodeId, NodeId), Vec<NodeId>> = [
        ((0usize, 3usize), vec![0usize, 2, 3]),
        ((3, 0), vec![3, 1, 0]),
        ((1, 2), vec![1, 0, 2]),
        ((2, 1), vec![2, 3, 1]),
    ]
    .into_iter()
    .map(|((s, d), path)| {
        (
            (NodeId(s), NodeId(d)),
            path.into_iter().map(NodeId).collect(),
        )
    })
    .collect();
    let model = NocModel::from_parts("chaos-cyclic", topology, routes, BTreeMap::new(), 1.0);
    let verdict = model.verify();
    if verdict.is_deadlock_free() {
        eprintln!("error: chaos gate expected the planted cyclic routing table to be rejected");
        return ExitCode::FAILURE;
    }
    let Some(witness) = verdict.cycle.as_ref() else {
        eprintln!("error: the rejection carried no witness cycle:\n{verdict}");
        return ExitCode::FAILURE;
    };
    println!(
        "chaos gate: planted cyclic routing table rejected with a {}-edge witness",
        witness.len()
    );
    println!("{verdict}");
    ExitCode::SUCCESS
}

fn merge_command(args: &[String]) -> ExitCode {
    let mut out = "EXPLORE_report.json".to_string();
    let mut inputs: Vec<String> = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--out" => match iter.next() {
                Some(path) => out = path.clone(),
                None => return usage("--out needs a path"),
            },
            path if !path.starts_with("--") => inputs.push(path.to_string()),
            other => return usage(&format!("unknown argument '{other}'")),
        }
    }
    if inputs.is_empty() {
        return usage("merge needs at least one report path");
    }
    let mut reports = Vec::new();
    for path in &inputs {
        match load_report(path) {
            Ok(report) => reports.push(report),
            Err(e) => {
                eprintln!("error: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let merged = match merge_reports(&reports) {
        Ok(merged) => merged,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "merged {} report(s): {} points",
        reports.len(),
        merged.points.len()
    );
    print_summary(&merged, false);
    write_report(&out, &merged, false)
}

fn events_command(args: &[String]) -> ExitCode {
    let mut summarize = false;
    let mut path: Option<String> = None;
    for arg in args {
        match arg.as_str() {
            "--summarize" => summarize = true,
            p if !p.starts_with("--") => path = Some(p.to_string()),
            other => return usage(&format!("unknown argument '{other}'")),
        }
    }
    let Some(path) = path else {
        return usage("events needs a trace path");
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("error: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let events = match noc_telemetry::read_jsonl(&text) {
        Ok(events) => events,
        Err(e) => {
            eprintln!("error: corrupt trace {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let summary = noc_telemetry::summarize(&events);
    if summarize {
        print!("{}", summary.render());
    } else {
        println!(
            "{path}: {} event(s), {} span name(s), {} counter(s), {} dropped",
            summary.events,
            summary.spans.len(),
            summary.counters.len(),
            summary.dropped,
        );
    }
    ExitCode::SUCCESS
}

/// Installs the process-wide recording telemetry handle when `--trace`
/// was given. Must run before the campaign; the handle is returned for
/// [`write_trace`] at the end.
fn install_trace(common: &CommonArgs) -> Option<&'static noc_telemetry::Telemetry> {
    common.trace.as_ref()?;
    noc_telemetry::install(noc_telemetry::Telemetry::recording());
    noc_telemetry::active()
}

/// Drains the trace and writes it as JSON Lines. Called right after the
/// main campaign returns — *before* the smoke acceptance gates, which
/// re-run extra in-process campaigns that would pollute the stream.
fn write_trace(common: &CommonArgs, tel: Option<&noc_telemetry::Telemetry>, stream: bool) {
    let (Some(path), Some(tel)) = (common.trace.as_ref(), tel) else {
        return;
    };
    let trace = tel.take_trace();
    if let Err(e) = std::fs::write(path, noc_telemetry::write_jsonl(&trace)) {
        eprintln!("warning: cannot write trace {path}: {e}");
        return;
    }
    note!(stream, "wrote trace {path} ({} event(s))", trace.len());
}

/// Reads a report back: the full JSON form, or — for streams left behind
/// by a killed campaign — JSON Lines under the default objective vector.
fn load_report(path: &str) -> Result<CampaignReport, String> {
    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    if text.trim_start().starts_with('{') && text.contains("\"report\"") {
        CampaignReport::from_json(&text)
    } else {
        CampaignReport::from_json_lines(&text, &ObjectiveKind::DEFAULT)
    }
}

fn execute(
    campaign: &Campaign,
    plan: CampaignPlan,
    stream: bool,
    cache: Option<&String>,
) -> CampaignReport {
    let mut sink: Box<dyn ResultSink> = if stream {
        Box::new(JsonLinesSink::new(
            std::io::stdout(),
            ObjectiveKind::DEFAULT.to_vec(),
        ))
    } else {
        Box::new(NullSink)
    };
    match cache {
        None => campaign.run_plan_with_sink(plan, sink.as_mut()),
        // Warm-start the VF2 match cache from the persisted file (a
        // missing file is a cold start, a corrupt one degrades with the
        // reason recorded) and save the grown cache back afterwards.
        Some(path) => {
            let warm = SharedMatchCache::warm_start(path, CACHE_CAPACITY);
            let mut report = campaign.run_plan_with_cache(plan, sink.as_mut(), &warm.cache);
            report.warm_cache = Some(WarmCacheRecord {
                path: path.clone(),
                loaded_graphs: warm.loaded_graphs,
                saved_graphs: warm.cache.graph_count(),
                degraded: warm.degraded,
            });
            if let Err(e) = warm.cache.save_to(path) {
                eprintln!("warning: cannot save cache {path}: {e}");
            }
            report
        }
    }
}

/// The CI acceptance gates on the smoke grid: three-way front equality
/// (single-shot == kill/resume == shard+merge, across thread counts) plus
/// cross-size shared-cache traffic. Failures abort via panic — in CI a
/// nonzero exit either way, with the assert message as the diagnosis.
fn smoke_gates(campaign: &Campaign, report: &CampaignReport, stream: bool) {
    // 1. Thread-count invariance (the original PR 2 gate).
    let sequential = Campaign::new(ScenarioGrid::smoke()).threads(1).run();
    assert_eq!(
        report.front, sequential.front,
        "parallel front diverged from sequential"
    );
    for (a, b) in report.points.iter().zip(&sequential.points) {
        assert_eq!(a.objectives, b.objectives, "point {} diverged", a.label);
    }

    // 2. Kill/resume: a half-complete campaign — round-tripped through
    // its JSON report, as a real resume would — folds to the same front.
    let half = campaign.run_plan(campaign.plan_shard(&ShardManifest::range(0, 2)));
    let reloaded =
        CampaignReport::from_json(&half.to_json()).expect("half report round-trips through JSON");
    let resumed = campaign
        .resume_from(&reloaded)
        .expect("resume accepts the half report");
    assert_eq!(
        resumed.front, sequential.front,
        "resumed front diverged from single-shot"
    );
    assert_eq!(resumed.carried_points, reloaded.points.len());

    // 3. Shard + merge, both partition modes.
    for mode in [ShardMode::Range, ShardMode::Modulo] {
        let shards: Vec<CampaignReport> = (0..2)
            .map(|i| campaign.run_plan(campaign.plan_shard(&ShardManifest::new(i, 2, mode))))
            .collect();
        let merged = merge_reports(&shards).expect("shard reports merge");
        assert_eq!(
            merged.front,
            sequential.front,
            "{} shard+merge front diverged from single-shot",
            mode.label()
        );
        assert_eq!(merged.hypervolume, sequential.hypervolume);
    }

    // 4. The campaign-wide match cache served several graph sizes, with
    // hits attributed to at least two of them.
    let sizes_with_hits = report.match_cache.iter().filter(|c| c.hits > 0).count();
    assert!(
        report.match_cache.len() >= 2 && sizes_with_hits >= 2,
        "expected cross-size shared-cache traffic, got {:?}",
        report.match_cache
    );

    // 5. Every report row carries a static-verification verdict, and
    // every synthesized VC assignment proves deadlock-free — the verify
    // gate ran on all points and rejected none.
    for point in &report.points {
        let verify = point
            .verify
            .as_ref()
            .unwrap_or_else(|| panic!("point {} carries no verification verdict", point.label));
        assert!(
            verify.deadlock_free,
            "point {} failed static verification: {}",
            point.label,
            verify.summary()
        );
        assert!(
            verify.routes_checked > 0,
            "point {} verified no routes",
            point.label
        );
    }

    note!(
        stream,
        "determinism checks: single-shot == parallel == resumed == sharded-and-merged"
    );
    note!(
        stream,
        "shared match cache: {} size(s), cross-size hits on {}",
        report.match_cache.len(),
        sizes_with_hits
    );
    note!(
        stream,
        "verification gate: all {} point(s) proved deadlock-free",
        report.points.len()
    );
}

fn print_summary(report: &CampaignReport, stream: bool) {
    let failed = report.points.iter().filter(|p| p.error.is_some()).count();
    note!(
        stream,
        "{} synthesized, {} reused, {} carried, {} failed, {:.0} ms wall",
        report.flows_synthesized,
        report.synthesis_reused,
        report.carried_points,
        failed,
        report.wall_ms
    );
    if !report.match_cache.is_empty() {
        let rows: Vec<String> = report
            .match_cache
            .iter()
            .map(|c| format!("n={}: {}h/{}m", c.vertex_count, c.hits, c.misses))
            .collect();
        note!(stream, "match cache by size: {}", rows.join("  "));
        let (hits, misses, warm_hits) = report
            .match_cache
            .iter()
            .fold((0u64, 0u64, 0u64), |(h, m, w), c| {
                (h + c.hits, m + c.misses, w + c.warm_hits)
            });
        let lookups = hits + misses;
        if lookups > 0 {
            note!(
                stream,
                "match cache total: {:.1}% hit rate ({hits} hit(s) / {misses} miss(es)), \
                 {warm_hits} warm hit(s)",
                100.0 * hits as f64 / lookups as f64,
            );
        }
    }
    note!(
        stream,
        "pareto front ({} of {} points): hypervolume {:.6}, spread {:.4}",
        report.front.len(),
        report.points.len(),
        report.hypervolume,
        report.spread,
    );
    let default_kinds = report.objective_kinds == ObjectiveKind::DEFAULT;
    for point in report.front_points() {
        if default_kinds {
            note!(
                stream,
                "  {:<48} energy {:>10.2} pJ  latency {:>7.2} cyc  area {:>6.1} mm2",
                point.label,
                point.objectives[0] * 1e12,
                point.objectives[1],
                point.objectives[2],
            );
        } else {
            let objs: Vec<String> = report
                .objective_kinds
                .iter()
                .zip(&point.objectives)
                .map(|(k, v)| format!("{} {v:.4}", k.label()))
                .collect();
            note!(stream, "  {:<48} {}", point.label, objs.join("  "));
        }
    }
}

fn write_report(out: &str, report: &CampaignReport, stream: bool) -> ExitCode {
    if let Err(e) = std::fs::write(out, report.to_json()) {
        eprintln!("failed to write {out}: {e}");
        return ExitCode::FAILURE;
    }
    note!(stream, "wrote {out}");
    ExitCode::SUCCESS
}

fn thread_label(threads: usize) -> String {
    if threads == 0 {
        "hw".to_string()
    } else {
        threads.to_string()
    }
}

fn usage(problem: &str) -> ExitCode {
    eprintln!("error: {problem}");
    eprintln!("usage: explore [run] [--smoke | --full] [--credit] [--threads N] [--out PATH] [--stream] [--resume PATH] [--cache PATH] [--trace PATH]");
    eprintln!("       explore sample --budget N [--policy bandit|halving] [--seed S] [--smoke | --full] [--threads N] [--out PATH] [--trace PATH]");
    eprintln!("       explore shard --index I --of K [--mode modulo|range] [--smoke | --full] [--threads N] [--out PATH] [--cache PATH]");
    eprintln!("       explore merge --out PATH REPORT...");
    eprintln!("       explore coordinate --workers N [--deadline SECS] [--cache PATH] [--work-dir DIR] [--chaos-kill-first] [--verbose] [--smoke | --full] [--threads N] [--out PATH] [--trace PATH]");
    eprintln!("       explore worker --ids I,J,... --stream-out PATH --out PATH [--cache-in PATH] [--cache-out PATH] [--stall-ms MS] [--smoke | --full] [--threads N]");
    eprintln!("       explore verify [--smoke | --full] [--threads N] [--out PATH] [--chaos-cyclic] [REPORT]");
    eprintln!("       explore events [--summarize] PATH");
    ExitCode::from(2)
}
