//! Regenerates every table and figure of the paper's evaluation section.
//!
//! Usage:
//!
//! ```text
//! reproduce [fig2|fig4a|fig4b|fig5|aes-decomp|aes-proto|ablations|all]
//! ```
//!
//! With no argument, runs everything (`all`). Each section prints both the
//! measured values and the paper's published numbers so the comparison in
//! `EXPERIMENTS.md` can be audited directly.

use std::time::Instant;

use noc::prelude::*;
use noc_bench::{
    decompose_with, fig4a_automotive, fig4a_workload, fig4b_workload, fig5_workload,
    timed_decomposition, FIG4A_SIZES, FIG4B_SEEDS, FIG4B_SIZES,
};

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_else(|| "all".into());
    match arg.as_str() {
        "fig2" => fig2(),
        "fig4a" => fig4a(),
        "fig4b" => fig4b(),
        "fig5" => fig5(),
        "aes-decomp" => aes_decomp(),
        "aes-proto" => aes_proto(),
        "ablations" => ablations(),
        "load-sweep" => load_sweep(),
        "multimedia" => multimedia(),
        "all" => {
            fig2();
            fig4a();
            fig4b();
            fig5();
            aes_decomp();
            aes_proto();
            ablations();
            load_sweep();
            multimedia();
        }
        other => {
            eprintln!("unknown experiment '{other}'");
            eprintln!(
                "usage: reproduce [fig2|fig4a|fig4b|fig5|aes-decomp|aes-proto|ablations|load-sweep|multimedia|all]"
            );
            std::process::exit(2);
        }
    }
}

/// Figure 2: the worked decomposition-tree example (gossip + loop + rest).
fn fig2() {
    println!("================================================================");
    println!("Figure 2 - worked decomposition example");
    println!("================================================================");
    let mut builder = Acg::builder(8);
    for a in 0..4 {
        for b in 0..4 {
            if a != b {
                builder = builder.volume(a, b, 8.0);
            }
        }
    }
    for i in 0..4 {
        builder = builder.volume(4 + i, 4 + (i + 1) % 4, 8.0);
    }
    let (result, elapsed) = timed_decomposition(&builder.build());
    println!("{}", result.paper_report());
    println!(
        "search: {} nodes, {} pruned, {:?}",
        result.stats.nodes_visited, result.stats.branches_pruned, elapsed
    );
    println!("(the paper's toy tree selects the MGG4-first branch, as here)\n");
}

/// Figure 4a: runtime on TGFF-style graphs.
fn fig4a() {
    println!("================================================================");
    println!("Figure 4a - decomposition runtime, TGFF-style graphs");
    println!("(paper: Matlab + C++ VF2, max 0.3 s at 18 nodes)");
    println!("================================================================");
    println!(
        "{:>6} {:>7} {:>11} {:>9} {:>8}",
        "nodes", "edges", "time", "visited", "pruned"
    );
    for tasks in FIG4A_SIZES {
        let acg = fig4a_workload(tasks);
        let edges = acg.graph().edge_count();
        let (result, elapsed) = timed_decomposition(&acg);
        println!(
            "{tasks:>6} {edges:>7} {:>9.3}ms {:>9} {:>8}",
            elapsed.as_secs_f64() * 1e3,
            result.stats.nodes_visited,
            result.stats.branches_pruned
        );
    }
    let acg = fig4a_automotive();
    let edges = acg.graph().edge_count();
    let (result, elapsed) = timed_decomposition(&acg);
    println!(
        "{:>6} {edges:>7} {:>9.3}ms {:>9} {:>8}  <- automotive (paper: 0.3 s)",
        18,
        elapsed.as_secs_f64() * 1e3,
        result.stats.nodes_visited,
        result.stats.branches_pruned
    );
    println!();
}

/// Figure 4b: average runtime on Pajek-style graphs.
fn fig4b() {
    println!("================================================================");
    println!("Figure 4b - avg decomposition runtime, Pajek-style graphs");
    println!("(paper: > 60 graphs, <= 3 minutes at 40 nodes in Matlab)");
    println!("================================================================");
    println!(
        "{:>6} {:>10} {:>13} {:>10}",
        "nodes", "avg edges", "avg time", "max time"
    );
    for n in FIG4B_SIZES {
        let mut total = 0.0;
        let mut max = 0.0f64;
        let mut edges = 0usize;
        for seed in 0..FIG4B_SEEDS {
            let acg = fig4b_workload(n, seed);
            edges += acg.graph().edge_count();
            let (_, elapsed) = timed_decomposition(&acg);
            let ms = elapsed.as_secs_f64() * 1e3;
            total += ms;
            max = max.max(ms);
        }
        println!(
            "{n:>6} {:>10.1} {:>11.3}ms {:>8.3}ms",
            edges as f64 / FIG4B_SEEDS as f64,
            total / FIG4B_SEEDS as f64,
            max
        );
    }
    println!(
        "total instances: {}\n",
        FIG4B_SIZES.len() as u64 * FIG4B_SEEDS
    );
}

/// Figure 5: the fully-decomposable random benchmark.
fn fig5() {
    println!("================================================================");
    println!("Figure 5 - random ACG with complete decomposition");
    println!("(paper output: MGG4 + 3x G123 + G124, no remainder, < 0.1 s)");
    println!("================================================================");
    let (result, elapsed) = timed_decomposition(&fig5_workload());
    println!("{}", result.paper_report());
    println!("decomposed in {elapsed:?}\n");
}

/// Section 5.2: the AES ACG decomposition.
fn aes_decomp() {
    println!("================================================================");
    println!("Section 5.2 - AES ACG decomposition");
    println!("(paper output: 4x MGG4 columns, 2x L4 rows, row-3 remainder,");
    println!(" COST: 28, found in 0.58 s in Matlab)");
    println!("================================================================");
    let t0 = Instant::now();
    let (result, _) = timed_decomposition(&noc::aes::aes_acg(0.0));
    println!("{}", result.paper_report());
    println!("decomposed in {:?}\n", t0.elapsed());
}

/// Section 5.2: the mesh-vs-custom prototype comparison.
fn aes_proto() {
    println!("================================================================");
    println!("Section 5.2 - prototype comparison (simulated substrate)");
    println!("================================================================");
    let cmp = AesPrototype::new().run().expect("AES experiment runs");
    println!("{}", cmp.paper_table());
    println!("mesh:   {}", cmp.mesh);
    println!("custom: {}", cmp.custom);
    println!();
}

/// Ablations of the design choices called out in DESIGN.md.
fn ablations() {
    println!("================================================================");
    println!("Ablations");
    println!("================================================================");
    let acg = noc::aes::aes_acg(0.0);

    // 1. Lower bound on/off.
    println!("--- branch-and-bound lower bound (AES ACG) ---");
    for (label, use_bound) in [("bound ON ", true), ("bound OFF", false)] {
        let (best, stats, elapsed) = decompose_with(
            &acg,
            CommLibrary::standard(),
            DecomposerConfig {
                use_lower_bound: use_bound,
                max_matches_per_level: None, // exhaustive, so the bound matters
                timeout: Some(std::time::Duration::from_secs(30)),
                ..DecomposerConfig::default()
            },
        );
        println!(
            "{label}: cost {}  nodes {:>8}  pruned {:>9}  {:?}{}",
            best.map(|b| b.total_cost.value()).unwrap_or(f64::NAN),
            stats.nodes_visited,
            stats.branches_pruned,
            elapsed,
            if stats.timed_out { "  (timed out)" } else { "" }
        );
    }

    // 2. Paper's one-match-per-primitive branching vs exhaustive matching.
    println!("--- branching discipline (AES ACG) ---");
    for (label, cap) in [
        ("first match (paper)", Some(1)),
        ("exhaustive images  ", None),
    ] {
        let (best, stats, elapsed) = decompose_with(
            &acg,
            CommLibrary::standard(),
            DecomposerConfig {
                max_matches_per_level: cap,
                timeout: Some(std::time::Duration::from_secs(30)),
                ..DecomposerConfig::default()
            },
        );
        println!(
            "{label}: cost {}  nodes {:>8}  {:?}{}",
            best.map(|b| b.total_cost.value()).unwrap_or(f64::NAN),
            stats.nodes_visited,
            elapsed,
            if stats.timed_out { "  (timed out)" } else { "" }
        );
    }

    // 3. Library composition.
    println!("--- library composition (AES ACG, Links objective) ---");
    let no_loops = CommLibrary::builder()
        .push(Primitive::gossip(4))
        .push(Primitive::broadcast(4))
        .push(Primitive::broadcast(3))
        .build();
    let no_gossip = CommLibrary::builder()
        .push(Primitive::broadcast(4))
        .push(Primitive::broadcast(3))
        .push(Primitive::ring(4))
        .build();
    for (label, lib) in [
        ("standard (paper)   ", CommLibrary::standard()),
        ("without loops      ", no_loops),
        ("without gossip     ", no_gossip),
        ("extended           ", CommLibrary::extended()),
    ] {
        let (best, _, elapsed) = decompose_with(&acg, lib, DecomposerConfig::default());
        let best = best.expect("unconstrained search always finds a leaf");
        println!(
            "{label}: cost {:>4}  matches {:>2}  remainder {:>2} edges  {:?}",
            best.total_cost.value(),
            best.matchings.len(),
            best.remainder.edge_count(),
            elapsed
        );
    }
    println!();
}

/// Extension: latency-load curves for XY mesh, O1TURN mesh and the
/// architecture synthesized for uniform traffic (not in the paper, but the
/// standard NoC evaluation its future work points toward).
fn load_sweep() {
    use noc::sim::{traffic, NocModel};
    println!("================================================================");
    println!("Extension - latency vs offered load (4x4, uniform random)");
    println!("================================================================");
    let energy = EnergyModel::new(TechnologyProfile::cmos_180nm());
    let xy = NocModel::mesh(4, 4, 2.0);
    let o1 = NocModel::mesh_o1turn(4, 4, 2.0, 13);
    println!(
        "{:>10} {:>14} {:>14}",
        "inj. rate", "XY latency", "O1TURN latency"
    );
    for rate in [0.02, 0.05, 0.10, 0.15, 0.20] {
        let events = traffic::bernoulli(16, 600, rate, 64, 21);
        let lat = |model: &NocModel| {
            Simulator::new(model, SimConfig::default(), energy.clone())
                .run(events.clone())
                .map(|r| r.avg_packet_latency_cycles)
                .unwrap_or(f64::NAN)
        };
        println!("{rate:>10.2} {:>11.1} cy {:>11.1} cy", lat(&xy), lat(&o1));
    }
    println!();
}

/// Extension: the full flow on a multimedia-decoder benchmark (the
/// application domain the paper's introduction motivates).
fn multimedia() {
    use noc::workloads::multimedia_16;
    println!("================================================================");
    println!("Extension - multimedia decoder benchmark (16 cores)");
    println!("================================================================");
    let acg = multimedia_16();
    let (result, elapsed) = timed_decomposition(&acg);
    println!("{}", result.paper_report());
    println!("architecture: {}", result.architecture.stats());
    println!("decomposed in {elapsed:?}\n");
}
