//! Shared helpers for the reproduction harness: the workloads and flows
//! behind every table and figure of the paper's evaluation (Section 5).
//!
//! The `reproduce` binary prints the paper-style tables; the Criterion
//! benches under `benches/` measure the same computations. Both call into
//! this module so the workload definitions exist in exactly one place.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

use noc::prelude::*;
use noc::synthesis::SearchStats;
use noc::workloads::{automotive_18, pajek, tgff, TgffConfig};

/// Node counts swept for the Figure 4a TGFF experiment.
pub const FIG4A_SIZES: [usize; 6] = [5, 8, 10, 12, 15, 18];

/// Node counts swept for the Figure 4b Pajek experiment.
pub const FIG4B_SIZES: [usize; 7] = [10, 15, 20, 25, 30, 35, 40];

/// Seeds per size for Figure 4b averaging (the paper used "more than 60
/// larger graphs"; 9 seeds x 7 sizes = 63 instances).
pub const FIG4B_SEEDS: u64 = 9;

/// The TGFF-style workload for a given size (Figure 4a).
pub fn fig4a_workload(tasks: usize) -> Acg {
    tgff(&TgffConfig {
        tasks,
        seed: tasks as u64,
        ..TgffConfig::default()
    })
}

/// The automotive 18-node benchmark highlighted in Figure 4a.
pub fn fig4a_automotive() -> Acg {
    automotive_18()
}

/// The Pajek-style workload for a given size and seed (Figure 4b). The
/// scaling recipe lives in `noc-workloads::scenarios` so exploration
/// campaigns sweep exactly these instances.
pub fn fig4b_workload(n: usize, seed: u64) -> Acg {
    noc::workloads::scenarios::planted_sized(n, seed)
}

/// The Figure 5 benchmark (reconstructed from the paper's output).
pub fn fig5_workload() -> Acg {
    pajek::fig5_benchmark()
}

/// Runs the decomposition exactly as the runtime figures measure it: the
/// floorplan is a precomputed grid ("the core coordinates are given as
/// inputs to the algorithm"), so only the search is timed.
pub fn timed_decomposition(acg: &Acg) -> (noc::FlowResult, Duration) {
    timed_decomposition_with(acg, DecomposerConfig::default())
}

/// [`timed_decomposition`] under an explicit engine configuration —
/// expansion order, thread count, cache settings (for the
/// sequential-vs-parallel scaling studies, see the `decompose_scaling`
/// bench).
pub fn timed_decomposition_with(
    acg: &Acg,
    config: DecomposerConfig,
) -> (noc::FlowResult, Duration) {
    let side = (acg.core_count() as f64).sqrt().ceil() as usize;
    let placement = Placement::grid(side, side, 2.0, 2.0);
    let t0 = Instant::now();
    let result = SynthesisFlow::new(acg.clone())
        .placement(placement)
        .decomposer_config(config)
        .run()
        .expect("decomposition always succeeds without constraints");
    (result, t0.elapsed())
}

/// A [`DecomposerConfig`] for the parallel engine: `threads` workers
/// (`0` = one per hardware thread), depth-first subtree order.
pub fn parallel_config(threads: usize) -> DecomposerConfig {
    DecomposerConfig {
        threads,
        ..DecomposerConfig::default()
    }
}

/// Decomposition under an explicit config (for the ablation studies).
pub fn decompose_with(
    acg: &Acg,
    library: CommLibrary,
    config: DecomposerConfig,
) -> (Option<Decomposition>, SearchStats, Duration) {
    let side = (acg.core_count() as f64).sqrt().ceil() as usize;
    let placement = Placement::grid(side, side, 2.0, 2.0);
    let cost = CostModel::new(
        EnergyModel::new(TechnologyProfile::cmos_180nm()),
        placement,
        Objective::Links,
    );
    let t0 = Instant::now();
    let outcome = Decomposer::new(acg, &library, cost).config(config).run();
    (outcome.best, outcome.stats, t0.elapsed())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_are_deterministic() {
        assert_eq!(fig4a_workload(10), fig4a_workload(10));
        assert_eq!(fig4b_workload(20, 3), fig4b_workload(20, 3));
        assert_eq!(fig5_workload().graph().edge_count(), 25);
    }

    #[test]
    fn timed_decomposition_returns_result() {
        let (result, elapsed) = timed_decomposition(&fig5_workload());
        assert!(result.decomposition.remainder.is_edgeless());
        assert!(elapsed.as_secs() < 60);
    }

    #[test]
    fn parallel_and_sequential_costs_agree_on_paper_workloads() {
        // The ISSUE/acceptance check: identical best costs on Figure 5 and
        // the Figure 4a automotive benchmark, and the match cache warm on
        // at least one paper workload.
        // Explicit thread counts: `parallel_config(0)` resolves to the
        // hardware thread count, which is 1 on single-core containers and
        // would compare the sequential engine to itself.
        for acg in [fig5_workload(), fig4a_automotive()] {
            let (seq, _) = timed_decomposition(&acg);
            let (par, _) = timed_decomposition_with(&acg, parallel_config(4));
            assert_eq!(
                seq.decomposition.total_cost.value(),
                par.decomposition.total_cost.value()
            );
        }
        let noncanonical = DecomposerConfig {
            use_canonical_ordering: false,
            ..DecomposerConfig::default()
        };
        let (canonical, _) = timed_decomposition(&fig5_workload());
        let (result, _) = timed_decomposition_with(&fig5_workload(), noncanonical);
        // Same optimum, and the root-image filter keeps the enumeration
        // count flat even though the permutation blowup multiplies visits.
        assert_eq!(
            canonical.decomposition.total_cost.value(),
            result.decomposition.total_cost.value()
        );
        assert_eq!(
            canonical.stats.cache_misses, result.stats.cache_misses,
            "stats: {:?}",
            result.stats
        );
    }

    #[test]
    fn decompose_with_honors_config() {
        let acg = fig5_workload();
        let (best, stats, _) = decompose_with(
            &acg,
            CommLibrary::standard(),
            DecomposerConfig {
                use_lower_bound: false,
                ..DecomposerConfig::default()
            },
        );
        assert!(best.is_some());
        assert_eq!(stats.branches_pruned, 0);
    }
}
