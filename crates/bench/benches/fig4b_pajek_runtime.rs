//! Figure 4b: average decomposition runtime on Pajek-style random graphs
//! (10-40 nodes; the paper reports <= 3 minutes at 40 nodes in Matlab).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use noc_bench::{fig4b_workload, timed_decomposition, FIG4B_SIZES};

fn bench_fig4b(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4b_pajek_runtime");
    group.sample_size(10);
    for n in FIG4B_SIZES {
        // One representative seed per size; the reproduce binary averages
        // over all seeds.
        let acg = fig4b_workload(n, 7);
        group.bench_with_input(BenchmarkId::from_parameter(n), &acg, |b, acg| {
            b.iter(|| timed_decomposition(acg).0.decomposition.total_cost)
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig4b);
criterion_main!(benches);
