//! Figure 5: decomposition of the 8-node fully-decomposable random
//! benchmark (the paper reports "less than 0.1 seconds"), plus the VF2
//! matching layer in isolation (gossip/broadcast pattern search).

use criterion::{criterion_group, criterion_main, Criterion};
use noc::graph::{iso::Vf2, DiGraph};
use noc_bench::{fig5_workload, timed_decomposition};

fn bench_fig5(c: &mut Criterion) {
    let acg = fig5_workload();
    c.bench_function("fig5_full_decomposition", |b| {
        b.iter(|| {
            let (result, _) = timed_decomposition(&acg);
            assert!(result.decomposition.remainder.is_edgeless());
            result.decomposition.total_cost
        })
    });

    // The matcher alone: MGG4 (K4) images inside the Figure 5 graph.
    let pattern = DiGraph::complete(4);
    c.bench_function("fig5_vf2_gossip_images", |b| {
        b.iter(|| {
            Vf2::new(&pattern, acg.graph())
                .distinct_images()
                .matches
                .len()
        })
    });
    let star = DiGraph::out_star(4);
    c.bench_function("fig5_vf2_broadcast_images", |b| {
        b.iter(|| Vf2::new(&star, acg.graph()).distinct_images().matches.len())
    });
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);
