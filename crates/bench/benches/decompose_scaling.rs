//! Decomposition runtime on the Figure 4b size sweep (10–40-node
//! Pajek-style graphs), the perf trajectory of the explicit-frontier
//! engine.
//!
//! Besides the usual criterion output, this bench writes
//! `BENCH_decompose.json` at the repository root: one row per (size,
//! configured thread count) with the mean runtime, plus a per-size phase
//! breakdown (match enumeration / bounding / frontier / leaf evaluation)
//! from an instrumented sequential pass, so regressions are attributable
//! to a specific engine layer rather than to "the search got slower".
//!
//! There is deliberately no headline `speedup` column: each row records
//! the `hardware_threads` it ran on, and a parallel row whose configured
//! threads exceed the hardware is labeled `parallel_oversubscribed` — on
//! a single-core container those rows measure *driver overhead* (the
//! `vs_seq` ratio should stay near 1.0), not scaling.
//!
//! The `telemetry` object is the disabled-overhead gate: with no trace
//! installed the engine's only telemetry cost is one relaxed atomic load
//! per run, measured directly and asserted ≤ 2% of an n = 30
//! decomposition (`traced_ms` shows the same size with a recording
//! handle installed, bounding the cost of `--trace`).
//!
//! Run with: `cargo bench --bench decompose_scaling`. Set
//! `NOC_BENCH_QUICK=1` for the CI smoke run (small sizes, short
//! measurement windows).

use std::time::Duration;

use criterion::{BenchmarkId, Criterion};
use noc::prelude::DecomposerConfig;
use noc_bench::{fig4b_workload, parallel_config, timed_decomposition_with, FIG4B_SIZES};

const SEED: u64 = 7;
/// Configured worker counts: 1 = the sequential engine, >1 = the packet
/// driver (oversubscribed on single-core hardware — overhead rows).
const THREAD_COUNTS: [usize; 3] = [1, 2, 4];

fn quick_mode() -> bool {
    std::env::var_os("NOC_BENCH_QUICK").is_some_and(|v| v != "0")
}

fn sizes() -> &'static [usize] {
    if quick_mode() {
        &FIG4B_SIZES[..3]
    } else {
        &FIG4B_SIZES
    }
}

fn bench_decompose_scaling(c: &mut Criterion) {
    let window = Duration::from_millis(if quick_mode() { 200 } else { 750 });
    for threads in THREAD_COUNTS {
        let name = format!("decompose_t{threads}");
        let mut group = c.benchmark_group(&name);
        group.sample_size(10);
        group.measurement_time(window);
        for &n in sizes() {
            let acg = fig4b_workload(n, SEED);
            group.bench_with_input(BenchmarkId::from_parameter(n), &acg, |b, acg| {
                b.iter(|| {
                    timed_decomposition_with(acg, parallel_config(threads))
                        .0
                        .decomposition
                        .total_cost
                })
            });
        }
        group.finish();
    }
}

/// Mean per-phase milliseconds of the instrumented sequential engine.
fn phase_row(n: usize, reps: u32) -> String {
    let acg = fig4b_workload(n, SEED);
    let config = DecomposerConfig {
        profile_phases: true,
        ..parallel_config(1)
    };
    let mut sums = [0.0f64; 5];
    for _ in 0..reps {
        let (result, elapsed) = timed_decomposition_with(&acg, config.clone());
        let p = result
            .stats
            .phases
            .expect("profile_phases was set but no breakdown came back");
        for (acc, d) in sums
            .iter_mut()
            .zip([p.match_enum, p.bound, p.frontier, p.leaf, elapsed])
        {
            *acc += d.as_secs_f64() * 1e3;
        }
    }
    let m = |i: usize| sums[i] / f64::from(reps);
    format!(
        "    {{\"n\": {n}, \"seed\": {SEED}, \"match_enum_ms\": {:.4}, \"bound_ms\": {:.4}, \"frontier_ms\": {:.4}, \"leaf_ms\": {:.4}, \"flow_ms\": {:.4}}}",
        m(0),
        m(1),
        m(2),
        m(3),
        m(4)
    )
}

fn main() {
    // Cross-check before timing: every engine configuration must prove
    // the same optimum on every swept size.
    for &n in sizes() {
        let acg = fig4b_workload(n, SEED);
        let (seq, _) = timed_decomposition_with(&acg, parallel_config(1));
        for threads in [2usize, 4, 0] {
            let (par, _) = timed_decomposition_with(&acg, parallel_config(threads));
            assert_eq!(
                seq.decomposition.total_cost.value(),
                par.decomposition.total_cost.value(),
                "engine disagreement at n = {n}, threads = {threads}"
            );
        }
    }

    let mut criterion = Criterion::default();
    bench_decompose_scaling(&mut criterion);

    let mean_of = |id: String| {
        criterion
            .results()
            .iter()
            .find(|r| r.id == id)
            .map(|r| r.mean_ns)
            .unwrap_or(f64::NAN)
    };
    let hw = std::thread::available_parallelism().map_or(1, |t| t.get());
    let mut rows = Vec::new();
    for &n in sizes() {
        let seq_ms = mean_of(format!("decompose_t1/{n}")) / 1e6;
        for threads in THREAD_COUNTS {
            let ms = mean_of(format!("decompose_t{threads}/{n}")) / 1e6;
            let mode = if threads == 1 {
                "sequential"
            } else if threads > hw {
                "parallel_oversubscribed"
            } else {
                "parallel"
            };
            let vs_seq = if threads == 1 {
                String::new()
            } else {
                format!(", \"vs_seq\": {:.3}", seq_ms / ms)
            };
            rows.push(format!(
                "    {{\"n\": {n}, \"seed\": {SEED}, \"threads\": {threads}, \"hardware_threads\": {hw}, \"mode\": \"{mode}\", \"mean_ms\": {ms:.4}{vs_seq}}}"
            ));
        }
    }
    let phase_reps = if quick_mode() { 1 } else { 5 };
    let phases: Vec<String> = sizes().iter().map(|&n| phase_row(n, phase_reps)).collect();

    // Disabled-telemetry overhead — the CI gate that tracing stays free
    // when off. The engine consults the process-wide handle once per run
    // (`noc_telemetry::active()`, a relaxed atomic load); time that fast
    // path directly, scale by the checks a run performs, and express it
    // as a fraction of an n = 30 decomposition. This block runs LAST:
    // installing the global recording handle below is irreversible and
    // would otherwise trace the criterion and phase passes above.
    let overhead_n = 30usize;
    let overhead_reps = if quick_mode() { 3u32 } else { 10 };
    let overhead_acg = fig4b_workload(overhead_n, SEED);
    let mut off_ms = 0.0;
    for _ in 0..overhead_reps {
        let (_, elapsed) = timed_decomposition_with(&overhead_acg, parallel_config(1));
        off_ms += elapsed.as_secs_f64() * 1e3;
    }
    let off_ms = off_ms / f64::from(overhead_reps);
    let fastpath_ns = {
        let iters = 10_000_000u64;
        let t0 = std::time::Instant::now();
        for _ in 0..iters {
            std::hint::black_box(noc_telemetry::active());
        }
        t0.elapsed().as_secs_f64() * 1e9 / iters as f64
    };
    let checks_per_run = 1.0; // one global-handle consult per Decomposer::run
    let disabled_overhead_pct = 100.0 * checks_per_run * fastpath_ns / (off_ms * 1e6);
    assert!(
        disabled_overhead_pct <= 2.0,
        "disabled-telemetry overhead {disabled_overhead_pct:.6}% exceeds 2% \
         at n = {overhead_n} ({fastpath_ns:.2} ns/check against {off_ms:.4} ms/run)"
    );
    // Informational: the same size with a recording handle installed
    // (tracing also forces phase timing on, so this bounds the cost of
    // `--trace`, not of the disabled default).
    noc_telemetry::install(noc_telemetry::Telemetry::recording());
    let mut traced_ms = 0.0;
    for _ in 0..overhead_reps {
        let (_, elapsed) = timed_decomposition_with(&overhead_acg, parallel_config(1));
        traced_ms += elapsed.as_secs_f64() * 1e3;
        if let Some(tel) = noc_telemetry::active() {
            tel.drain(); // keep the event log bounded across reps
        }
    }
    let traced_ms = traced_ms / f64::from(overhead_reps);
    let telemetry = format!(
        "  \"telemetry\": {{\"n\": {overhead_n}, \"fastpath_ns\": {fastpath_ns:.3}, \"checks_per_run\": {checks_per_run}, \"disabled_overhead_pct\": {disabled_overhead_pct:.6}, \"off_ms\": {off_ms:.4}, \"traced_ms\": {traced_ms:.4}}}"
    );

    let json = format!(
        "{{\n  \"bench\": \"decompose_scaling\",\n  \"workload\": \"fig4b_pajek_planted\",\n  \"unit\": \"milliseconds_mean_per_decomposition\",\n{},\n  \"results\": [\n{}\n  ],\n  \"phases\": [\n{}\n  ]\n}}\n",
        telemetry,
        rows.join(",\n"),
        phases.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_decompose.json");
    std::fs::write(path, &json).expect("write BENCH_decompose.json");
    println!("\nwrote {path}");
}
