//! Sequential vs parallel decomposition runtime on the Figure 4b size
//! sweep (10–40-node Pajek-style graphs), the perf trajectory of the
//! explicit-frontier engine.
//!
//! Besides the usual criterion output, this bench writes
//! `BENCH_decompose.json` at the repository root: per-size mean runtimes
//! for the sequential and the parallel engine plus the speedup, so the
//! numbers are tracked in-tree across PRs.
//!
//! Run with: `cargo bench --bench decompose_scaling`

use criterion::{BenchmarkId, Criterion};
use noc_bench::{fig4b_workload, parallel_config, timed_decomposition_with, FIG4B_SIZES};

const SEED: u64 = 7;

fn bench_decompose_scaling(c: &mut Criterion) {
    for (label, threads) in [("decompose_seq", 1usize), ("decompose_par", 0usize)] {
        let mut group = c.benchmark_group(label);
        group.sample_size(10);
        group.measurement_time(std::time::Duration::from_millis(750));
        for n in FIG4B_SIZES {
            let acg = fig4b_workload(n, SEED);
            group.bench_with_input(BenchmarkId::from_parameter(n), &acg, |b, acg| {
                b.iter(|| {
                    timed_decomposition_with(acg, parallel_config(threads))
                        .0
                        .decomposition
                        .total_cost
                })
            });
        }
        group.finish();
    }
}

fn main() {
    // Cross-check before timing: both engines must prove the same optimum
    // on every swept size.
    for n in FIG4B_SIZES {
        let acg = fig4b_workload(n, SEED);
        let (seq, _) = timed_decomposition_with(&acg, parallel_config(1));
        let (par, _) = timed_decomposition_with(&acg, parallel_config(0));
        assert_eq!(
            seq.decomposition.total_cost.value(),
            par.decomposition.total_cost.value(),
            "engine disagreement at n = {n}"
        );
    }

    let mut criterion = Criterion::default();
    bench_decompose_scaling(&mut criterion);

    let mean_of = |id: String| {
        criterion
            .results()
            .iter()
            .find(|r| r.id == id)
            .map(|r| r.mean_ns)
            .unwrap_or(f64::NAN)
    };
    let mut rows = Vec::new();
    for n in FIG4B_SIZES {
        let seq_ns = mean_of(format!("decompose_seq/{n}"));
        let par_ns = mean_of(format!("decompose_par/{n}"));
        rows.push(format!(
            "    {{\"n\": {n}, \"seed\": {SEED}, \"seq_ms\": {:.4}, \"par_ms\": {:.4}, \"speedup\": {:.3}}}",
            seq_ns / 1e6,
            par_ns / 1e6,
            seq_ns / par_ns
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"decompose_scaling\",\n  \"workload\": \"fig4b_pajek_planted\",\n  \"hardware_threads\": {},\n  \"unit\": \"milliseconds_mean_per_decomposition\",\n  \"results\": [\n{}\n  ]\n}}\n",
        std::thread::available_parallelism().map_or(1, |n| n.get()),
        rows.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_decompose.json");
    std::fs::write(path, &json).expect("write BENCH_decompose.json");
    println!("\nwrote {path}");
}
