//! Campaign throughput **and exploration quality**: full
//! synthesis+simulation flows per second at 1 and N worker threads on the
//! smoke grid, plus the front-quality indicators (hypervolume against the
//! fixed reference points, Schott spread, front size) — so the perf
//! trajectory started by `BENCH_decompose.json` tracks not just how fast
//! campaigns run but whether they keep finding the same-quality fronts.
//!
//! Writes `BENCH_explore.json` at the repository root.
//!
//! Run with: `cargo bench --bench explore_campaign`

use criterion::Criterion;
use noc_explore::{Campaign, ScenarioGrid};

fn main() {
    // Correctness gate before timing: the parallel campaign must fold the
    // same front as the sequential one.
    let sequential = Campaign::new(ScenarioGrid::smoke()).threads(1).run();
    let parallel = Campaign::new(ScenarioGrid::smoke()).threads(0).run();
    assert_eq!(
        sequential.front, parallel.front,
        "campaign front depends on thread count"
    );
    let flows = sequential.points.len();

    let hardware_threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut criterion = Criterion::default();
    {
        let mut group = criterion.benchmark_group("explore_campaign");
        group.sample_size(10);
        group.measurement_time(std::time::Duration::from_millis(1500));
        for (label, threads) in [("seq", 1usize), ("par", 0usize)] {
            group.bench_function(label, |b| {
                b.iter(|| {
                    Campaign::new(ScenarioGrid::smoke())
                        .threads(threads)
                        .run()
                        .front
                })
            });
        }
        group.finish();
    }

    let mean_ns = |id: &str| {
        criterion
            .results()
            .iter()
            .find(|r| r.id == id)
            .map(|r| r.mean_ns)
            .unwrap_or(f64::NAN)
    };
    let seq_ns = mean_ns("explore_campaign/seq");
    let par_ns = mean_ns("explore_campaign/par");
    let flows_per_sec = |ns: f64| flows as f64 / (ns / 1e9);
    let json = format!(
        "{{\n  \"bench\": \"explore_campaign\",\n  \"grid\": \"smoke\",\n  \"flows_per_campaign\": {flows},\n  \"hardware_threads\": {hardware_threads},\n  \"unit\": \"flows_per_second\",\n  \"front\": {{\"size\": {}, \"hypervolume\": {:.6}, \"spread\": {:.6}}},\n  \"results\": [\n    {{\"threads\": 1, \"campaign_ms\": {:.4}, \"flows_per_sec\": {:.3}}},\n    {{\"threads\": {hardware_threads}, \"campaign_ms\": {:.4}, \"flows_per_sec\": {:.3}}}\n  ],\n  \"speedup\": {:.3}\n}}\n",
        sequential.front.len(),
        sequential.hypervolume,
        sequential.spread,
        seq_ns / 1e6,
        flows_per_sec(seq_ns),
        par_ns / 1e6,
        flows_per_sec(par_ns),
        seq_ns / par_ns,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_explore.json");
    std::fs::write(path, &json).expect("write BENCH_explore.json");
    println!("\nwrote {path}");
}
