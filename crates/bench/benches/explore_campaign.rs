//! Campaign throughput **and exploration quality**: full
//! synthesis+simulation flows per second at 1 and N worker threads on the
//! smoke grid, plus the front-quality indicators (hypervolume against the
//! fixed reference points, Schott spread, front size) — so the perf
//! trajectory started by `BENCH_decompose.json` tracks not just how fast
//! campaigns run but whether they keep finding the same-quality fronts.
//! The `sampled` object tracks the budgeted sampler: how much of the
//! exhaustive front's hypervolume a bandit reaches at 2/3 of the flows.
//!
//! Front metrics are written with Rust's shortest-round-trip float
//! `Display` rather than fixed precision — the normalized smoke front's
//! spread is ~3e-4, which `{:.6}`-style truncation can squash toward an
//! indistinguishable-from-degenerate `0.000000`.
//!
//! Rows follow `BENCH_decompose.json`'s labeling: each records the
//! configured `threads`, the `hardware_threads` it actually ran on, and
//! a `mode` label — there is deliberately no headline `speedup` column,
//! because on a single-core container a "parallel" campaign measures
//! driver overhead, not scaling (the per-row `vs_seq` ratio should sit
//! near 1.0 there).
//!
//! Writes `BENCH_explore.json` at the repository root.
//!
//! Run with: `cargo bench --bench explore_campaign`

use criterion::Criterion;
use noc_explore::{Campaign, SamplerConfig, ScenarioGrid};

fn main() {
    // Correctness gate before timing: the parallel campaign must fold the
    // same front as the sequential one.
    let sequential = Campaign::new(ScenarioGrid::smoke()).threads(1).run();
    let parallel = Campaign::new(ScenarioGrid::smoke()).threads(0).run();
    assert_eq!(
        sequential.front, parallel.front,
        "campaign front depends on thread count"
    );
    let flows = sequential.points.len();

    let hardware_threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut criterion = Criterion::default();
    {
        let mut group = criterion.benchmark_group("explore_campaign");
        group.sample_size(10);
        group.measurement_time(std::time::Duration::from_millis(1500));
        for (label, threads) in [("seq", 1usize), ("par", 0usize)] {
            group.bench_function(label, |b| {
                b.iter(|| {
                    Campaign::new(ScenarioGrid::smoke())
                        .threads(threads)
                        .run()
                        .front
                })
            });
        }
        group.finish();
    }

    let mean_ns = |id: &str| {
        criterion
            .results()
            .iter()
            .find(|r| r.id == id)
            .map(|r| r.mean_ns)
            .unwrap_or(f64::NAN)
    };
    let seq_ns = mean_ns("explore_campaign/seq");
    let par_ns = mean_ns("explore_campaign/par");
    let flows_per_sec = |ns: f64| flows as f64 / (ns / 1e9);

    // Static-verification cost: every point carries a verdict with the
    // verifier's wall-time; the extended-CDG pass must stay a rounding
    // error next to synthesis + simulation, so the per-point maximum is
    // budgeted in-process.
    const VERIFY_BUDGET_MS: f64 = 25.0;
    let verify_ms: Vec<f64> = sequential
        .points
        .iter()
        .map(|p| {
            p.verify
                .as_ref()
                .unwrap_or_else(|| panic!("point {} carries no verdict", p.label))
                .verify_ms
        })
        .collect();
    let verify_mean_ms = verify_ms.iter().sum::<f64>() / verify_ms.len() as f64;
    let verify_max_ms = verify_ms.iter().cloned().fold(0.0, f64::max);
    assert!(
        verify_max_ms <= VERIFY_BUDGET_MS,
        "verification cost {verify_max_ms:.3} ms/point blew the {VERIFY_BUDGET_MS} ms budget"
    );

    // Budgeted sampling quality: a deterministic bandit at 2/3 of the
    // grid's flows, scored against the exhaustive front's hypervolume.
    let budget = (flows * 2) / 3;
    let sampled = Campaign::new(ScenarioGrid::smoke()).run_sampled(&SamplerConfig::new(budget));
    let provenance = sampled.sampler.as_ref().expect("sampled provenance");
    assert!(
        sampled.hypervolume >= 0.9 * sequential.hypervolume,
        "sampled hypervolume {} below 90% of full-grid {}",
        sampled.hypervolume,
        sequential.hypervolume
    );

    // `threads: 0` resolves to one worker per hardware thread; on a
    // single-core box that is the sequential inline path, so label it
    // honestly instead of implying a parallel measurement.
    let par_mode = if hardware_threads == 1 {
        "sequential"
    } else {
        "parallel"
    };
    let json = format!(
        "{{\n  \"bench\": \"explore_campaign\",\n  \"grid\": \"smoke\",\n  \"flows_per_campaign\": {flows},\n  \"hardware_threads\": {hardware_threads},\n  \"unit\": \"flows_per_second\",\n  \"front\": {{\"size\": {}, \"hypervolume\": {}, \"spread\": {}}},\n  \"verify\": {{\"points\": {}, \"mean_ms\": {:.4}, \"max_ms\": {:.4}, \"budget_ms\": {VERIFY_BUDGET_MS}}},\n  \"sampled\": {{\"policy\": \"{}\", \"budget\": {}, \"flows_spent\": {}, \"rounds\": {}, \"hypervolume\": {}, \"full_grid_fraction\": {:.6}}},\n  \"results\": [\n    {{\"threads\": 1, \"hardware_threads\": {hardware_threads}, \"mode\": \"sequential\", \"campaign_ms\": {:.4}, \"flows_per_sec\": {:.3}}},\n    {{\"threads\": {hardware_threads}, \"hardware_threads\": {hardware_threads}, \"mode\": \"{par_mode}\", \"campaign_ms\": {:.4}, \"flows_per_sec\": {:.3}, \"vs_seq\": {:.3}}}\n  ]\n}}\n",
        sequential.front.len(),
        sequential.hypervolume,
        sequential.spread,
        verify_ms.len(),
        verify_mean_ms,
        verify_max_ms,
        provenance.policy,
        provenance.budget,
        provenance.flows_spent,
        provenance.rounds.len(),
        sampled.hypervolume,
        sampled.hypervolume / sequential.hypervolume,
        seq_ns / 1e6,
        flows_per_sec(seq_ns),
        par_ns / 1e6,
        flows_per_sec(par_ns),
        seq_ns / par_ns,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_explore.json");
    std::fs::write(path, &json).expect("write BENCH_explore.json");
    println!("\nwrote {path}");
}
