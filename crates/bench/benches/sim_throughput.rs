//! Simulator throughput: simulated cycles and ejected flits per wall-clock
//! second on saturating uniform-traffic load ramps over square meshes,
//! comparing the event-driven engine against the preserved seed-semantics
//! rescan loop (`noc::sim::reference`) it replaced.
//!
//! The comparison is honest because it is *proved* first: before any
//! timing, every swept (mesh, rate) point is run through both cores and
//! the reports must match bit for bit, and the threaded sweep must fold
//! the same curve as the sequential one. A speedup over a core producing
//! different answers would be meaningless.
//!
//! The ≥ 5× gate is measured *paired*: rounds of one seed ramp and one
//! event ramp back to back, gating on the median per-round ratio, so a
//! frequency or thermal drift across the run scales both sides of each
//! round and cancels — unlike comparing two criterion groups measured
//! minutes apart.
//!
//! Rows follow `BENCH_decompose.json`'s labeling: each records the
//! configured `threads`, the `hardware_threads` it actually ran on, and a
//! `mode` label — no headline `speedup` column, because on a single-core
//! container a threaded sweep measures driver overhead, not scaling. Per
//! mesh there are four rows: `seed_semantics` (the preserved rescan loop
//! run over the ramp, regenerating traffic per point exactly as `sweep()`
//! does), `sequential` (the event core over the *same* per-point loop —
//! the like-for-like engine comparison, gated at ≥ 5× on 4×4), `sweep`
//! (the full `sweep()` driver, sequential), `parallel` /
//! `parallel_oversubscribed` (the threaded wave driver), and `credit`
//! (the same per-point loop under the credit-based pipelined router,
//! `RouterFidelity::Credit` at the default one-cycle pipeline). The
//! per-row `vs_seed` ratio on event rows tracks the rework itself.
//!
//! The credit pipeline's cost is budgeted the same paired way the
//! engine's speedup is gated: rounds of one ideal ramp and one credit
//! ramp back to back on the 4×4 mesh, and the median per-round slowdown
//! must stay ≤ 3× — full fidelity may not cost more than three ideal
//! runs. The `credit_gate` object in the JSON records the measurement.
//!
//! Writes `BENCH_sim.json` at the repository root.
//!
//! Run with: `cargo bench --bench sim_throughput`. Set
//! `NOC_BENCH_QUICK=1` for the CI smoke run (4×4 only, short windows).

use std::time::Duration;

use criterion::Criterion;
use noc::energy::{EnergyModel, TechnologyProfile};
use noc::sim::sweep::{sweep, SweepConfig};
use noc::sim::{
    reference, traffic, CreditConfig, NocModel, RouterFidelity, Simulator, TrafficEvent,
};

/// The load ramp: low-load points (latency anchors) up through
/// saturation, where every buffer stays contended.
const RATES: [f64; 4] = [0.05, 0.25, 0.45, 0.6];
const SEED: u64 = 7;
const PAYLOAD_BITS: u64 = 64;

fn quick_mode() -> bool {
    std::env::var_os("NOC_BENCH_QUICK").is_some_and(|v| v != "0")
}

fn sides() -> &'static [usize] {
    if quick_mode() {
        &[4]
    } else {
        &[4, 6, 8]
    }
}

/// Ramp length. Long enough that steady-state forwarding dominates the
/// post-injection drain tail; quick mode trims the mesh list and the
/// measurement window instead of the workload.
fn duration() -> u64 {
    1_000
}

fn energy() -> EnergyModel {
    EnergyModel::new(TechnologyProfile::cmos_180nm())
}

fn sweep_config(duration: u64) -> SweepConfig {
    SweepConfig {
        rates: RATES.to_vec(),
        duration_cycles: duration,
        payload_bits: PAYLOAD_BITS,
        seed: SEED,
        saturation_cutoff: None, // fixed work per iteration
        ..Default::default()
    }
}

/// The same traffic `sweep()` generates for each ramp point.
fn ramp_events(model: &NocModel, duration: u64) -> Vec<Vec<TrafficEvent>> {
    RATES
        .iter()
        .map(|&rate| traffic::bernoulli(model.node_count(), duration, rate, PAYLOAD_BITS, SEED))
        .collect()
}

/// Runs the whole ramp through the seed-semantics core, regenerating
/// traffic per point exactly as `sweep()` does — the baseline workload.
fn seed_ramp(model: &NocModel, duration: u64) -> u64 {
    let energy = energy();
    let cfg = noc::sim::SimConfig::default();
    let mut cycles = 0u64;
    for &rate in &RATES {
        let events = traffic::bernoulli(model.node_count(), duration, rate, PAYLOAD_BITS, SEED);
        let report =
            reference::run_reference(model, &cfg, &energy, &events).expect("seed ramp completes");
        cycles += report.total_cycles;
    }
    cycles
}

/// The same per-point loop on the event core — identical workload,
/// identical traffic regeneration, only the engine swapped.
fn event_ramp(sim: &Simulator, nodes: usize, duration: u64) -> u64 {
    let mut cycles = 0u64;
    for &rate in &RATES {
        let events = traffic::bernoulli(nodes, duration, rate, PAYLOAD_BITS, SEED);
        let report = sim.run(events).expect("event ramp completes");
        cycles += report.total_cycles;
    }
    cycles
}

/// The credit-router configuration under test: the default one-cycle
/// pipeline (RC 1, ST 1, credit return 1).
fn credit_config() -> noc::sim::SimConfig {
    noc::sim::SimConfig {
        router: RouterFidelity::Credit(CreditConfig::default()),
        ..noc::sim::SimConfig::default()
    }
}

/// `event_ramp`, but also folding ejected flits — the credit rows report
/// their own totals because the pipeline stretches the simulated ramp.
fn ramp_totals(sim: &Simulator, nodes: usize, duration: u64) -> (u64, u64) {
    let mut cycles = 0u64;
    let mut flits = 0u64;
    for &rate in &RATES {
        let events = traffic::bernoulli(nodes, duration, rate, PAYLOAD_BITS, SEED);
        let report = sim.run(events).expect("credit ramp completes");
        cycles += report.total_cycles;
        flits += report.flits_ejected;
    }
    (cycles, flits)
}

fn main() {
    let duration = duration();
    let hw = std::thread::available_parallelism().map_or(1, |t| t.get());
    // On single-core hardware a 2-thread sweep still exercises the wave
    // driver; the row is labeled oversubscribed rather than dropped.
    let par_threads = hw.max(2);

    // Equivalence preflight: both cores, every point, bit for bit; and
    // thread count must not change the folded curve.
    let mut totals = Vec::new(); // (side, total_cycles, total_flits)
    for &side in sides() {
        let model = NocModel::mesh(side, side, 1.0);
        let cfg = noc::sim::SimConfig::default();
        let mut cycles = 0u64;
        let mut flits = 0u64;
        for events in ramp_events(&model, duration) {
            let new = Simulator::new(&model, cfg, energy())
                .run(events.clone())
                .expect("event core completes");
            let old = reference::run_reference(&model, &cfg, &energy(), &events)
                .expect("seed core completes");
            assert_eq!(new, old, "cores disagree on {side}x{side}");
            assert_eq!(
                new.energy.total().joules().to_bits(),
                old.energy.total().joules().to_bits(),
                "energy bits disagree on {side}x{side}"
            );
            cycles += new.total_cycles;
            flits += new.flits_ejected;
        }
        let sequential = sweep(&model, &sweep_config(duration), &energy()).unwrap();
        let threaded = sweep(
            &model,
            &SweepConfig {
                threads: par_threads,
                ..sweep_config(duration)
            },
            &energy(),
        )
        .unwrap();
        assert_eq!(sequential, threaded, "sweep curve depends on thread count");
        let credit_sim = Simulator::new(&model, credit_config(), energy());
        let (credit_cycles, credit_flits) = ramp_totals(&credit_sim, model.node_count(), duration);
        totals.push((side, cycles, flits, credit_cycles, credit_flits));
    }

    // Paired gate measurement on the 4×4 mesh (see module docs). The
    // zeroth round warms caches and the frequency governor and is
    // discarded.
    let gate_rounds = if quick_mode() { 15 } else { 21 };
    let mut gate_ratios = Vec::with_capacity(gate_rounds);
    {
        let model = NocModel::mesh(4, 4, 1.0);
        let sim = Simulator::new(&model, noc::sim::SimConfig::default(), energy());
        for round in 0..gate_rounds + 1 {
            let t0 = std::time::Instant::now();
            let c0 = seed_ramp(&model, duration);
            let seed_t = t0.elapsed();
            let t0 = std::time::Instant::now();
            let c1 = event_ramp(&sim, model.node_count(), duration);
            let event_t = t0.elapsed();
            assert_eq!(c0, c1, "ramps simulate different cycle counts");
            if round > 0 {
                gate_ratios.push(seed_t.as_secs_f64() / event_t.as_secs_f64());
            }
        }
    }
    gate_ratios.sort_by(|a, b| a.total_cmp(b));
    let gate_vs_seed = gate_ratios[gate_ratios.len() / 2];
    assert!(
        gate_vs_seed >= 5.0,
        "event core is only {gate_vs_seed:.2}x the seed loop on the \
         saturating 4x4 ramp (median of {gate_rounds} paired rounds, \
         need >= 5x)"
    );

    // Paired credit-overhead budget on the same 4x4 ramp: ideal and
    // credit rounds back to back, gating on the median per-round
    // slowdown so drift cancels exactly as in the speedup gate above.
    let mut credit_ratios = Vec::with_capacity(gate_rounds);
    {
        let model = NocModel::mesh(4, 4, 1.0);
        let ideal = Simulator::new(&model, noc::sim::SimConfig::default(), energy());
        let credit = Simulator::new(&model, credit_config(), energy());
        for round in 0..gate_rounds + 1 {
            let t0 = std::time::Instant::now();
            event_ramp(&ideal, model.node_count(), duration);
            let ideal_t = t0.elapsed();
            let t0 = std::time::Instant::now();
            ramp_totals(&credit, model.node_count(), duration);
            let credit_t = t0.elapsed();
            if round > 0 {
                credit_ratios.push(credit_t.as_secs_f64() / ideal_t.as_secs_f64());
            }
        }
    }
    credit_ratios.sort_by(|a, b| a.total_cmp(b));
    let credit_vs_ideal = credit_ratios[credit_ratios.len() / 2];
    assert!(
        credit_vs_ideal <= 3.0,
        "credit-mode ramp costs {credit_vs_ideal:.2}x the ideal router on \
         the saturating 4x4 ramp (median of {gate_rounds} paired rounds, \
         budget <= 3x)"
    );

    let mut criterion = Criterion::default();
    let window = Duration::from_millis(if quick_mode() { 300 } else { 1_500 });
    for &side in sides() {
        let model = NocModel::mesh(side, side, 1.0);
        let name = format!("sim_{side}x{side}");
        let mut group = criterion.benchmark_group(&name);
        group.sample_size(10);
        group.measurement_time(window);
        let sim = Simulator::new(&model, noc::sim::SimConfig::default(), energy());
        let credit_sim = Simulator::new(&model, credit_config(), energy());
        group.bench_function("seed", |b| b.iter(|| seed_ramp(&model, duration)));
        group.bench_function("event_t1", |b| {
            b.iter(|| event_ramp(&sim, model.node_count(), duration))
        });
        group.bench_function("event_sweep", |b| {
            b.iter(|| {
                sweep(&model, &sweep_config(duration), &energy())
                    .unwrap()
                    .len()
            })
        });
        group.bench_function("credit_t1", |b| {
            b.iter(|| ramp_totals(&credit_sim, model.node_count(), duration))
        });
        group.bench_function("event_par", |b| {
            b.iter(|| {
                sweep(
                    &model,
                    &SweepConfig {
                        threads: par_threads,
                        ..sweep_config(duration)
                    },
                    &energy(),
                )
                .unwrap()
                .len()
            })
        });
        group.finish();
    }

    let mean_of = |id: String| {
        criterion
            .results()
            .iter()
            .find(|r| r.id == id)
            .map(|r| r.mean_ns)
            .unwrap_or(f64::NAN)
    };
    let par_mode = if par_threads > hw {
        "parallel_oversubscribed"
    } else {
        "parallel"
    };
    let mut rows = Vec::new();
    for &(side, cycles, flits, credit_cycles, credit_flits) in &totals {
        let seed_ns = mean_of(format!("sim_{side}x{side}/seed"));
        for (bench, threads, mode) in [
            ("seed", 1usize, "seed_semantics"),
            ("event_t1", 1, "sequential"),
            ("event_sweep", 1, "sweep"),
            ("event_par", par_threads, par_mode),
            ("credit_t1", 1, "credit"),
        ] {
            let ns = mean_of(format!("sim_{side}x{side}/{bench}"));
            // The credit pipeline simulates its own (longer) ramp; its
            // throughput row reports the cycles it actually retired.
            let (row_cycles, row_flits) = if bench == "credit_t1" {
                (credit_cycles, credit_flits)
            } else {
                (cycles, flits)
            };
            let cps = row_cycles as f64 / (ns / 1e9);
            let fps = row_flits as f64 / (ns / 1e9);
            let vs_seed = if bench == "seed" {
                String::new()
            } else {
                format!(", \"vs_seed\": {:.3}", seed_ns / ns)
            };
            rows.push(format!(
                "    {{\"mesh\": \"{side}x{side}\", \"ramp_points\": {}, \"simulated_cycles\": {row_cycles}, \"flits\": {row_flits}, \"threads\": {threads}, \"hardware_threads\": {hw}, \"mode\": \"{mode}\", \"mean_ms\": {:.4}, \"cycles_per_sec\": {:.1}, \"flits_per_sec\": {:.1}{vs_seed}}}",
                RATES.len(),
                ns / 1e6,
                cps,
                fps,
            ));
        }
    }
    let json = format!(
        "{{\n  \"bench\": \"sim_throughput\",\n  \"workload\": \"uniform_bernoulli_ramp\",\n  \"rates\": [0.05, 0.25, 0.45, 0.6],\n  \"duration_cycles\": {duration},\n  \"payload_bits\": {PAYLOAD_BITS},\n  \"seed\": {SEED},\n  \"unit\": \"simulated_cycles_per_second\",\n  \"equivalence\": \"all ramp points bit-identical to seed semantics; curve thread-invariant\",\n  \"gate\": {{\"mesh\": \"4x4\", \"paired_rounds\": {gate_rounds}, \"median_vs_seed\": {gate_vs_seed:.3}, \"floor\": 5.0}},\n  \"credit_gate\": {{\"mesh\": \"4x4\", \"paired_rounds\": {gate_rounds}, \"median_vs_ideal\": {credit_vs_ideal:.3}, \"budget\": 3.0}},\n  \"results\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sim.json");
    std::fs::write(path, &json).expect("write BENCH_sim.json");
    println!("\nwrote {path}");
}
