//! Section 5.2: the AES prototype comparison — decomposition of the AES
//! ACG (paper: 0.58 s in Matlab) and one encrypted block simulated on the
//! mesh and on the synthesized custom architecture (paper: 271 vs 199
//! cycles/block on the Virtex-2 prototypes).

use criterion::{criterion_group, criterion_main, Criterion};
use noc::prelude::*;
use noc::sim::Phase;
use noc_bench::timed_decomposition;

fn aes_phases() -> Vec<Phase> {
    let run = DistributedAes::new(&[0x2b; 16]).encrypt_block(&[0x32; 16]);
    run.trace
        .phases
        .iter()
        .map(|p| Phase {
            label: p.name.clone(),
            compute_cycles: p.compute_cycles,
            events: p
                .messages
                .iter()
                .map(|m| noc::sim::TrafficEvent::new(0, m.src, m.dst, m.bits))
                .collect(),
        })
        .collect()
}

fn bench_aes(c: &mut Criterion) {
    c.bench_function("aes_acg_decomposition", |b| {
        let acg = noc::aes::aes_acg(0.0);
        b.iter(|| {
            let (result, _) = timed_decomposition(&acg);
            assert_eq!(result.decomposition.total_cost.value(), 28.0);
        })
    });

    let phases = aes_phases();
    let tech = TechnologyProfile::fpga_virtex2();
    let mesh = NocModel::mesh(4, 4, 2.0);
    c.bench_function("aes_block_on_mesh", |b| {
        b.iter(|| {
            Simulator::new(&mesh, SimConfig::default(), EnergyModel::new(tech.clone()))
                .run_phases(&phases)
                .unwrap()
                .total_cycles
        })
    });

    let flow = SynthesisFlow::new(noc::aes::aes_acg(0.0))
        .technology(tech.clone())
        .placement(Placement::grid(4, 4, 2.0, 2.0))
        .run()
        .unwrap();
    let custom = flow.noc_model();
    c.bench_function("aes_block_on_custom", |b| {
        b.iter(|| {
            Simulator::new(
                &custom,
                SimConfig::default(),
                EnergyModel::new(tech.clone()),
            )
            .run_phases(&phases)
            .unwrap()
            .total_cycles
        })
    });

    c.bench_function("aes_full_prototype_comparison", |b| {
        b.iter(|| {
            let cmp = AesPrototype::new().run().unwrap();
            assert!(cmp.custom.total_cycles < cmp.mesh.total_cycles);
            cmp.mesh.total_cycles
        })
    });
}

criterion_group!(benches, bench_aes);
criterion_main!(benches);
