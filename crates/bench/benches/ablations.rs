//! Ablation benches for the design decisions documented in `DESIGN.md`:
//! the branch-and-bound lower bound, the branching discipline, and the
//! library composition.

use criterion::{criterion_group, criterion_main, Criterion};
use noc::prelude::*;
use noc_bench::{decompose_with, fig5_workload};

fn bench_ablations(c: &mut Criterion) {
    let acg = fig5_workload();

    let mut group = c.benchmark_group("ablation_bounding");
    for (label, use_bound) in [("with_bound", true), ("without_bound", false)] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let (best, _, _) = decompose_with(
                    &acg,
                    CommLibrary::standard(),
                    DecomposerConfig {
                        use_lower_bound: use_bound,
                        max_matches_per_level: None,
                        ..DecomposerConfig::default()
                    },
                );
                best.unwrap().total_cost
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("ablation_branching");
    for (label, cap) in [("first_match", Some(1)), ("exhaustive", None)] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let (best, _, _) = decompose_with(
                    &acg,
                    CommLibrary::standard(),
                    DecomposerConfig {
                        max_matches_per_level: cap,
                        ..DecomposerConfig::default()
                    },
                );
                best.unwrap().total_cost
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("ablation_library");
    let libraries = [
        ("standard", CommLibrary::standard()),
        ("extended", CommLibrary::extended()),
        (
            "gossip_only",
            CommLibrary::builder().push(Primitive::gossip(4)).build(),
        ),
    ];
    for (label, lib) in libraries {
        group.bench_function(label, |b| {
            b.iter(|| {
                let (best, _, _) = decompose_with(&acg, lib.clone(), DecomposerConfig::default());
                best.unwrap().total_cost
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
