//! Figure 4a: decomposition runtime on TGFF-style task graphs (5-18
//! nodes, plus the 18-node automotive benchmark the paper highlights at
//! 0.3 s in Matlab).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use noc_bench::{fig4a_automotive, fig4a_workload, timed_decomposition, FIG4A_SIZES};

fn bench_fig4a(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4a_tgff_runtime");
    group.sample_size(10);
    for tasks in FIG4A_SIZES {
        let acg = fig4a_workload(tasks);
        group.bench_with_input(BenchmarkId::from_parameter(tasks), &acg, |b, acg| {
            b.iter(|| timed_decomposition(acg).0.decomposition.total_cost)
        });
    }
    let auto = fig4a_automotive();
    group.bench_with_input(
        BenchmarkId::from_parameter("automotive18"),
        &auto,
        |b, acg| b.iter(|| timed_decomposition(acg).0.decomposition.total_cost),
    );
    group.finish();
}

criterion_group!(benches, bench_fig4a);
criterion_main!(benches);
