//! Customized NoC communication architecture synthesis using a
//! decomposition approach.
//!
//! This is the facade crate of a full reproduction of *Ogras & Marculescu,
//! "Energy- and Performance-Driven NoC Communication Architecture Synthesis
//! Using a Decomposition Approach" (DATE 2005)*. It re-exports every layer
//! and adds two conveniences:
//!
//! * [`SynthesisFlow`] — the end-to-end pipeline: ACG → floorplan →
//!   branch-and-bound decomposition → glued architecture → simulation-ready
//!   model;
//! * [`AesPrototype`] — the paper's Section 5.2 experiment: the 16-node
//!   distributed AES engine executed on both a standard 4x4 mesh and the
//!   synthesized custom architecture, reporting cycles/block, throughput,
//!   latency, power and energy.
//!
//! # Layers
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`graph`] | `noc-graph` | digraphs, VF2, graph algorithms, ACG |
//! | [`primitives`] | `noc-primitives` | gossip/broadcast/loop/path library |
//! | [`energy`] | `noc-energy` | Equation-1 bit-energy model |
//! | [`floorplan`] | `noc-floorplan` | slicing-tree SA floorplanner |
//! | [`synthesis`] | `noc-synthesis` | decomposition B&B, constraints, gluing |
//! | [`sim`] | `noc-sim` | cycle-accurate wormhole simulator |
//! | [`verify`] | `noc-verify` | static deadlock verifier (extended CDG) |
//! | [`aes`] | `noc-aes` | AES-128 + 16-node distributed engine |
//! | [`workloads`] | `noc-workloads` | TGFF/Pajek benchmark generators |
//! | [`telemetry`] | `noc-telemetry` | structured spans, counters, event streams |
//!
//! One layer sits *above* this facade: the `noc-explore` crate runs
//! whole campaigns of [`SynthesisFlow`]s over a declarative scenario grid
//! and folds the results into a multi-objective Pareto front. (It depends
//! on this crate, so it cannot be re-exported from here — add
//! `noc-explore` directly.)
//!
//! # Quickstart
//!
//! ```
//! use noc::prelude::*;
//!
//! // An application whose communication is a gossip among 4 cores.
//! let acg = Acg::from_graph_uniform(DiGraph::complete(4), EdgeDemand::from_volume(64.0));
//! let result = SynthesisFlow::new(acg).seed(7).run().expect("synthesis succeeds");
//! assert_eq!(result.decomposition.matchings.len(), 1); // one MGG4
//! // The static verifier proves the routes deadlock-free under the
//! // architecture's own VC assignment (extended channel dependency graph).
//! let verdict = result.architecture.verify();
//! assert!(verdict.is_deadlock_free(), "{verdict}");
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod aes_proto;
mod flow;

pub use noc_aes as aes;
pub use noc_energy as energy;
pub use noc_floorplan as floorplan;
pub use noc_graph as graph;
pub use noc_primitives as primitives;
pub use noc_sim as sim;
pub use noc_synthesis as synthesis;
pub use noc_telemetry as telemetry;
pub use noc_verify as verify;
pub use noc_workloads as workloads;

pub use aes_proto::{AesPrototype, PrototypeComparison};
pub use flow::{FlowError, FlowResult, SynthesisFlow};

/// The most common imports for working with the full pipeline.
pub mod prelude {
    pub use crate::aes_proto::{AesPrototype, PrototypeComparison};
    pub use crate::flow::{FlowError, FlowResult, SynthesisFlow};
    pub use noc_aes::{aes_acg, Aes128, DistributedAes};
    pub use noc_energy::{Energy, EnergyModel, TechnologyProfile};
    pub use noc_floorplan::{Core, Placement, SlicingFloorplanner};
    pub use noc_graph::{Acg, DiGraph, EdgeDemand, NodeId};
    pub use noc_primitives::{CommLibrary, Primitive};
    pub use noc_sim::{CreditConfig, NocModel, RouterFidelity, SimConfig, Simulator};
    pub use noc_synthesis::{
        Architecture, CostModel, Decomposer, DecomposerConfig, Decomposition, Objective,
        SearchOrder, SharedMatchCache, SizeCacheStats, WarmStart,
    };
    pub use noc_verify::{RouteSet, RoutingSpec, Verdict};
    pub use noc_workloads::{tgff, TgffConfig};
}
