//! The end-to-end synthesis pipeline.

use std::time::Duration;

use noc_energy::{EnergyModel, TechnologyProfile};
use noc_floorplan::{Core, Placement, SlicingFloorplanner};
use noc_graph::Acg;
use noc_primitives::CommLibrary;
use noc_sim::NocModel;
use noc_synthesis::{
    constraints, Architecture, ConstraintReport, CostModel, Decomposer, DecomposerConfig,
    Decomposition, Objective, SearchOrder, SearchStats, SharedMatchCache,
};

/// Why a synthesis flow failed.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum FlowError {
    /// The search found no legal decomposition (only possible with
    /// constraint checking enabled).
    NoLegalDecomposition {
        /// Leaves rejected by the constraint checker.
        constraint_rejections: u64,
    },
}

impl std::fmt::Display for FlowError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FlowError::NoLegalDecomposition {
                constraint_rejections,
            } => write!(
                f,
                "no legal decomposition ({constraint_rejections} leaves violated constraints)"
            ),
        }
    }
}

impl std::error::Error for FlowError {}

/// Everything a finished flow produces.
#[derive(Debug, Clone)]
pub struct FlowResult {
    /// The winning decomposition.
    pub decomposition: Decomposition,
    /// The glued architecture (topology, routes, demands).
    pub architecture: Architecture,
    /// The floorplan used for link lengths.
    pub placement: Placement,
    /// Search statistics.
    pub stats: SearchStats,
    /// Constraint report of the final architecture.
    pub constraints: ConstraintReport,
}

impl FlowResult {
    /// A simulation-ready model of the synthesized architecture, with
    /// shortest-path routes filled in for non-ACG pairs.
    pub fn noc_model(&self) -> NocModel {
        let mut arch = self.architecture.clone();
        arch.fill_all_pairs();
        NocModel::from_architecture(&arch)
    }

    /// The paper-format decomposition report.
    pub fn paper_report(&self) -> String {
        self.decomposition.paper_report()
    }
}

/// Builder for the full synthesis pipeline: floorplan → decomposition →
/// architecture. See the [crate example](crate).
#[derive(Debug, Clone)]
pub struct SynthesisFlow {
    acg: Acg,
    library: CommLibrary,
    technology: TechnologyProfile,
    objective: Objective,
    placement: Option<Placement>,
    core_area_mm2: f64,
    seed: u64,
    config: DecomposerConfig,
}

impl SynthesisFlow {
    /// Starts a flow for `acg` with the paper's defaults: the standard
    /// library (`MGG4`, `G124`, `G123`, `L4`), 180 nm technology, the
    /// link-count objective (the paper's printed COST), automatic
    /// floorplanning of 1 mm² cores.
    pub fn new(acg: Acg) -> Self {
        SynthesisFlow {
            acg,
            library: CommLibrary::standard(),
            technology: TechnologyProfile::cmos_180nm(),
            objective: Objective::Links,
            placement: None,
            core_area_mm2: 1.0,
            seed: 1,
            config: DecomposerConfig::default(),
        }
    }

    /// Replaces the communication library.
    #[must_use]
    pub fn library(mut self, library: CommLibrary) -> Self {
        self.library = library;
        self
    }

    /// Replaces the technology profile.
    #[must_use]
    pub fn technology(mut self, technology: TechnologyProfile) -> Self {
        self.technology = technology;
        self
    }

    /// Sets the optimization objective.
    #[must_use]
    pub fn objective(mut self, objective: Objective) -> Self {
        self.objective = objective;
        self
    }

    /// Uses an explicit placement instead of the automatic floorplanner.
    #[must_use]
    pub fn placement(mut self, placement: Placement) -> Self {
        self.placement = Some(placement);
        self
    }

    /// Sets the square-core area used by the automatic floorplanner.
    ///
    /// # Panics
    ///
    /// Panics if the area is not positive.
    #[must_use]
    pub fn core_area_mm2(mut self, area: f64) -> Self {
        assert!(area > 0.0, "core area must be positive");
        self.core_area_mm2 = area;
        self
    }

    /// Seed for the floorplanner.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets a decomposition timeout.
    #[must_use]
    pub fn timeout(mut self, timeout: Duration) -> Self {
        self.config.timeout = Some(timeout);
        self
    }

    /// Replaces the full decomposer configuration.
    #[must_use]
    pub fn decomposer_config(mut self, config: DecomposerConfig) -> Self {
        self.config = config;
        self
    }

    /// Sets the search-tree expansion order (depth-first reproduces the
    /// paper's printed decompositions; best-first tightens the incumbent
    /// sooner on irregular graphs).
    #[must_use]
    pub fn search_order(mut self, order: SearchOrder) -> Self {
        self.config.order = order;
        self
    }

    /// Sets the decomposition worker-thread count: `1` = sequential
    /// (default), `0` = one per hardware thread. Parallel searches return
    /// the same best cost as sequential ones (global pruning through a
    /// shared incumbent); see the engine docs.
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.config.threads = threads;
        self
    }

    /// Enables rejection of constraint-violating decompositions during the
    /// search (Section 4.2).
    #[must_use]
    pub fn enforce_constraints(mut self) -> Self {
        self.config.check_constraints = true;
        self
    }

    /// Shares a VF2 match-enumeration cache with other flows over the same
    /// application graph (exploration campaigns hand every scenario on one
    /// workload the same cache; see
    /// [`SharedMatchCache`](noc_synthesis::SharedMatchCache)).
    #[must_use]
    pub fn shared_match_cache(mut self, cache: SharedMatchCache) -> Self {
        self.config.shared_cache = Some(cache);
        self
    }

    /// Runs floorplanning, decomposition and architecture gluing.
    ///
    /// # Errors
    ///
    /// [`FlowError::NoLegalDecomposition`] when constraint enforcement
    /// rejects every leaf. Without constraint enforcement the flow always
    /// succeeds (the all-remainder decomposition is a valid fallback).
    pub fn run(&self) -> Result<FlowResult, FlowError> {
        self.run_with_placement(self.auto_placement())
    }

    /// The placement [`run`](Self::run) would use: the explicit one if set,
    /// otherwise the automatic floorplan. Campaigns floorplan once through
    /// this and feed the result to [`run_with_placement`](Self::run_with_placement) across scenario
    /// points that share physical inputs.
    pub fn auto_placement(&self) -> Placement {
        match &self.placement {
            Some(p) => p.clone(),
            None => {
                // Volume-weighted wirelength pulls chatty cores together.
                let connections: Vec<(usize, usize, f64)> = self
                    .acg
                    .demands()
                    .map(|(e, d)| (e.src.index(), e.dst.index(), d.volume))
                    .collect();
                self.floorplan(self.seed, connections)
            }
        }
    }

    /// The paper's first future-work item (Section 6): "relax the initial
    /// floorplan information and solve the optimization problem for the
    /// general case". This alternates floorplanning and decomposition:
    /// each round re-floorplans with wirelength weights taken from the
    /// *synthesized architecture's* physical links (volume actually carried
    /// per link, including multi-hop aggregation), then re-decomposes on
    /// the new coordinates. Returns the best iteration and the cost
    /// history.
    ///
    /// Only the [`Objective::Energy`] and [`Objective::Hybrid`] objectives
    /// are placement-sensitive; under [`Objective::Links`] every iteration
    /// costs the same and the first result is returned.
    ///
    /// # Errors
    ///
    /// Propagates [`FlowError`] from the underlying runs.
    ///
    /// # Panics
    ///
    /// Panics if `iterations == 0`.
    pub fn run_co_optimized(&self, iterations: usize) -> Result<(FlowResult, Vec<f64>), FlowError> {
        assert!(iterations > 0, "need at least one iteration");
        let mut best = self.run()?;
        let mut history = vec![best.decomposition.total_cost.value()];
        if matches!(self.objective, Objective::Links) {
            return Ok((best, history));
        }
        for round in 1..iterations {
            // Wirelength terms from the links the architecture actually
            // instantiated, weighted by the traffic they carry.
            let connections: Vec<(usize, usize, f64)> = best
                .architecture
                .links()
                .map(|((a, b), info)| (a.index(), b.index(), info.carried_volume_bits.max(1.0)))
                .collect();
            let placement = self.floorplan(self.seed.wrapping_add(round as u64), connections);
            let candidate = self.run_with_placement(placement)?;
            let cost = candidate.decomposition.total_cost.value();
            history.push(cost);
            if cost < best.decomposition.total_cost.value() {
                best = candidate;
            }
        }
        Ok((best, history))
    }

    fn floorplan(&self, seed: u64, connections: Vec<(usize, usize, f64)>) -> Placement {
        let side = self.core_area_mm2.sqrt();
        let cores: Vec<Core> = (0..self.acg.core_count())
            .map(|i| Core::new(self.acg.core_name(noc_graph::NodeId(i)), side, side))
            .collect();
        SlicingFloorplanner::new(cores)
            .seed(seed)
            .wirelength(0.1, connections)
            .run()
    }

    /// Runs decomposition and architecture gluing against an
    /// already-computed placement — the artifact-reuse entry point:
    /// [`auto_placement`](Self::auto_placement) (or a previous
    /// [`FlowResult::placement`]) can be shared across many runs whose
    /// scenario differs only in search knobs or technology.
    ///
    /// # Errors
    ///
    /// Same as [`run`](Self::run).
    pub fn run_with_placement(&self, placement: Placement) -> Result<FlowResult, FlowError> {
        let cost_model = CostModel::new(
            EnergyModel::new(self.technology.clone()),
            placement.clone(),
            self.objective,
        );
        let outcome = Decomposer::new(&self.acg, &self.library, cost_model)
            .config(self.config.clone())
            .run();
        let Some(decomposition) = outcome.best else {
            return Err(FlowError::NoLegalDecomposition {
                constraint_rejections: outcome.stats.constraint_rejections,
            });
        };
        let architecture =
            Architecture::synthesize(&self.acg, &self.library, &decomposition, placement.clone());
        let report = constraints::check(&architecture, &self.acg, &self.technology);
        Ok(FlowResult {
            decomposition,
            architecture,
            placement,
            stats: outcome.stats,
            constraints: report,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_graph::{DiGraph, EdgeDemand, NodeId};

    #[test]
    fn gossip_flow_end_to_end() {
        let acg = Acg::from_graph_uniform(DiGraph::complete(4), EdgeDemand::new(64.0, 1.0e6));
        let result = SynthesisFlow::new(acg).seed(3).run().unwrap();
        assert_eq!(result.decomposition.matchings.len(), 1);
        assert!(result.constraints.is_satisfied());
        let model = result.noc_model();
        assert_eq!(model.node_count(), 4);
        // All ACG pairs routable.
        for a in 0..4 {
            for b in 0..4 {
                if a != b {
                    assert!(model.route(NodeId(a), NodeId(b)).is_some());
                }
            }
        }
    }

    #[test]
    fn explicit_placement_is_respected() {
        let acg = Acg::from_graph_uniform(DiGraph::cycle(4), EdgeDemand::from_volume(8.0));
        let placement = Placement::grid(4, 1, 3.0, 3.0);
        let result = SynthesisFlow::new(acg)
            .placement(placement.clone())
            .run()
            .unwrap();
        assert_eq!(result.placement, placement);
    }

    #[test]
    fn constraint_enforcement_can_fail() {
        let strangled = TechnologyProfile::builder("strangled")
            .max_bisection_links(0)
            .build();
        let acg = Acg::from_graph_uniform(DiGraph::complete(4), EdgeDemand::new(8.0, 1.0));
        let err = SynthesisFlow::new(acg)
            .technology(strangled)
            .enforce_constraints()
            .run()
            .unwrap_err();
        assert!(matches!(err, FlowError::NoLegalDecomposition { .. }));
        assert!(err.to_string().contains("no legal decomposition"));
    }

    #[test]
    fn search_order_and_threads_agree_on_cost() {
        let acg = Acg::from_graph_uniform(DiGraph::complete(4), EdgeDemand::from_volume(8.0));
        let placement = Placement::grid(2, 2, 2.0, 2.0);
        let baseline = SynthesisFlow::new(acg.clone())
            .placement(placement.clone())
            .run()
            .unwrap();
        let best_first = SynthesisFlow::new(acg.clone())
            .placement(placement.clone())
            .search_order(SearchOrder::BestFirst)
            .run()
            .unwrap();
        let parallel = SynthesisFlow::new(acg)
            .placement(placement)
            .threads(0)
            .run()
            .unwrap();
        let cost = baseline.decomposition.total_cost.value();
        assert_eq!(cost, best_first.decomposition.total_cost.value());
        assert_eq!(cost, parallel.decomposition.total_cost.value());
    }

    #[test]
    fn energy_objective_flow() {
        let acg = Acg::from_graph_uniform(DiGraph::complete(4), EdgeDemand::from_volume(128.0));
        let result = SynthesisFlow::new(acg)
            .objective(Objective::Energy)
            .run()
            .unwrap();
        assert!(result.decomposition.total_cost.value() > 0.0);
    }

    #[test]
    fn paper_report_passthrough() {
        let acg = Acg::from_graph_uniform(DiGraph::complete(4), EdgeDemand::from_volume(8.0));
        let result = SynthesisFlow::new(acg).run().unwrap();
        assert!(result.paper_report().starts_with("COST:"));
    }
}

#[cfg(test)]
mod co_opt_tests {
    use super::*;
    use noc_graph::{DiGraph, EdgeDemand};

    #[test]
    fn co_optimization_never_returns_worse_than_first_round() {
        let acg = Acg::from_graph_uniform(DiGraph::complete(4), EdgeDemand::from_volume(512.0));
        let flow = SynthesisFlow::new(acg).objective(Objective::Energy).seed(2);
        let (best, history) = flow.run_co_optimized(4).unwrap();
        assert_eq!(history.len(), 4);
        let best_cost = best.decomposition.total_cost.value();
        assert!(
            best_cost <= history[0] + 1e-18,
            "{best_cost} vs {history:?}"
        );
        assert!(history.iter().all(|c| best_cost <= c + 1e-18));
    }

    #[test]
    fn links_objective_short_circuits() {
        let acg = Acg::from_graph_uniform(DiGraph::cycle(4), EdgeDemand::from_volume(8.0));
        let flow = SynthesisFlow::new(acg); // Links objective default
        let (_, history) = flow.run_co_optimized(5).unwrap();
        assert_eq!(history.len(), 1, "Links is placement-insensitive");
    }

    #[test]
    #[should_panic(expected = "at least one iteration")]
    fn zero_iterations_panics() {
        let acg = Acg::from_graph_uniform(DiGraph::cycle(4), EdgeDemand::from_volume(8.0));
        let _ = SynthesisFlow::new(acg).run_co_optimized(0);
    }
}
