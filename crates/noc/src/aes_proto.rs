//! The Section 5.2 prototype experiment: distributed AES on a standard
//! 4x4 mesh versus the synthesized custom architecture.
//!
//! The paper prototyped both designs on a Virtex-2 FPGA and measured
//! cycles/block (271 mesh vs 199 custom → 47.2 vs 64.3 Mbps at 100 MHz),
//! average packet latency (11.5 vs 9.6 cycles) and power (-33%), giving
//! 5.1 uJ vs 2.5 uJ per 128-bit block (-51%). This module reruns that
//! experiment on the cycle-accurate simulator: same cores, same placement,
//! same traffic — only the interconnect differs.

use noc_aes::{aes_acg, Aes128, BlockTrace, ComputeModel, DistributedAes};
use noc_energy::{EnergyModel, TechnologyProfile};
use noc_floorplan::Placement;
use noc_sim::{NocModel, Phase, PhasedReport, SimConfig, SimError, Simulator};

use crate::{FlowError, SynthesisFlow};

/// Runs the mesh-vs-custom AES comparison; see the module docs above.
#[derive(Debug, Clone)]
pub struct AesPrototype {
    key: [u8; 16],
    block: [u8; 16],
    technology: TechnologyProfile,
    sim_config: SimConfig,
    compute: ComputeModel,
    pitch_mm: f64,
}

impl Default for AesPrototype {
    fn default() -> Self {
        Self::new()
    }
}

impl AesPrototype {
    /// Creates the experiment with the paper's setting: 100 MHz
    /// FPGA-calibrated technology, 2 mm tile pitch, default compute model,
    /// FIPS-197 Appendix B key/plaintext.
    pub fn new() -> Self {
        AesPrototype {
            key: [
                0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf,
                0x4f, 0x3c,
            ],
            block: [
                0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d, 0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37,
                0x07, 0x34,
            ],
            technology: TechnologyProfile::fpga_virtex2(),
            sim_config: SimConfig::default(),
            compute: ComputeModel::default(),
            pitch_mm: 2.0,
        }
    }

    /// Overrides the technology profile.
    #[must_use]
    pub fn technology(mut self, technology: TechnologyProfile) -> Self {
        self.technology = technology;
        self
    }

    /// Overrides the simulator configuration.
    #[must_use]
    pub fn sim_config(mut self, config: SimConfig) -> Self {
        self.sim_config = config;
        self
    }

    /// Overrides the per-node compute model.
    #[must_use]
    pub fn compute_model(mut self, compute: ComputeModel) -> Self {
        self.compute = compute;
        self
    }

    /// Overrides the key and plaintext block.
    #[must_use]
    pub fn input(mut self, key: [u8; 16], block: [u8; 16]) -> Self {
        self.key = key;
        self.block = block;
        self
    }

    /// Runs the full experiment.
    ///
    /// # Errors
    ///
    /// Propagates synthesis or simulation failures (neither occurs with the
    /// default configuration).
    ///
    /// # Panics
    ///
    /// Panics if the distributed engine disagrees with the reference AES —
    /// that would be a bug, not an input condition.
    pub fn run(&self) -> Result<PrototypeComparison, PrototypeError> {
        // 1. Execute the distributed engine; verify correctness.
        let engine = DistributedAes::new(&self.key).with_compute_model(self.compute);
        let run = engine.encrypt_block(&self.block);
        let reference = Aes128::new(&self.key).encrypt_block(&self.block);
        assert_eq!(
            run.ciphertext, reference,
            "distributed engine must match reference AES"
        );
        let phases = trace_to_phases(&run.trace);

        // 2. Both architectures use the same 4x4 tile placement.
        let placement = Placement::grid(4, 4, self.pitch_mm, self.pitch_mm);

        // 3. The mesh baseline.
        let mesh = NocModel::mesh(4, 4, self.pitch_mm);

        // 4. The synthesized custom architecture.
        let flow = SynthesisFlow::new(aes_acg(0.0))
            .technology(self.technology.clone())
            .placement(placement)
            .run()?;
        let custom = flow.noc_model();

        // 5. Simulate the same block trace on both.
        let energy = EnergyModel::new(self.technology.clone());
        let mesh_report =
            Simulator::new(&mesh, self.sim_config, energy.clone()).run_phases(&phases)?;
        let custom_report = Simulator::new(&custom, self.sim_config, energy).run_phases(&phases)?;

        Ok(PrototypeComparison {
            mesh: mesh_report,
            custom: custom_report,
            decomposition_report: flow.paper_report(),
        })
    }
}

/// Errors from the prototype experiment.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PrototypeError {
    /// Synthesis failed.
    Flow(FlowError),
    /// Simulation failed.
    Sim(SimError),
}

impl std::fmt::Display for PrototypeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PrototypeError::Flow(e) => write!(f, "synthesis failed: {e}"),
            PrototypeError::Sim(e) => write!(f, "simulation failed: {e}"),
        }
    }
}

impl std::error::Error for PrototypeError {}

impl From<FlowError> for PrototypeError {
    fn from(e: FlowError) -> Self {
        PrototypeError::Flow(e)
    }
}

impl From<SimError> for PrototypeError {
    fn from(e: SimError) -> Self {
        PrototypeError::Sim(e)
    }
}

/// Converts the engine's block trace into simulator phases.
fn trace_to_phases(trace: &BlockTrace) -> Vec<Phase> {
    let mut phases: Vec<Phase> = trace
        .phases
        .iter()
        .map(|p| Phase {
            label: p.name.clone(),
            compute_cycles: p.compute_cycles,
            events: p
                .messages
                .iter()
                .map(|m| noc_sim::TrafficEvent::new(0, m.src, m.dst, m.bits))
                .collect(),
        })
        .collect();
    if trace.trailing_compute_cycles > 0 {
        phases.push(Phase {
            label: "final/addroundkey".into(),
            compute_cycles: trace.trailing_compute_cycles,
            events: Vec::new(),
        });
    }
    phases
}

/// Side-by-side results of the mesh and custom runs.
#[derive(Debug, Clone)]
pub struct PrototypeComparison {
    /// The 4x4 mesh baseline.
    pub mesh: PhasedReport,
    /// The synthesized custom architecture.
    pub custom: PhasedReport,
    /// The paper-format decomposition that produced the custom topology.
    pub decomposition_report: String,
}

impl PrototypeComparison {
    /// Throughput gain of the custom architecture, e.g. `0.36` = +36%.
    pub fn throughput_gain(&self) -> f64 {
        let mesh = self.mesh.throughput_mbps(128.0);
        let custom = self.custom.throughput_mbps(128.0);
        custom / mesh - 1.0
    }

    /// Latency reduction of the custom architecture, e.g. `0.17` = -17%.
    pub fn latency_reduction(&self) -> f64 {
        1.0 - self.custom.avg_packet_latency_cycles / self.mesh.avg_packet_latency_cycles
    }

    /// Average power reduction, e.g. `0.33` = -33%.
    pub fn power_reduction(&self) -> f64 {
        1.0 - self.custom.avg_power_watts() / self.mesh.avg_power_watts()
    }

    /// Energy-per-block reduction, e.g. `0.51` = -51%.
    pub fn energy_reduction(&self) -> f64 {
        1.0 - self.custom.energy_per_run().joules() / self.mesh.energy_per_run().joules()
    }

    /// Formats the comparison as the paper's Section 5.2 table, with the
    /// published values alongside for reference.
    pub fn paper_table(&self) -> String {
        let mut s = String::new();
        s.push_str("metric                      mesh      custom    change    (paper)\n");
        s.push_str(&format!(
            "cycles/block            {:>8}  {:>8}  {:>+7.1}%  (271 -> 199, -26.6%)\n",
            self.mesh.total_cycles,
            self.custom.total_cycles,
            (self.custom.total_cycles as f64 / self.mesh.total_cycles as f64 - 1.0) * 100.0
        ));
        s.push_str(&format!(
            "throughput (Mbps)       {:>8.1}  {:>8.1}  {:>+7.1}%  (47.2 -> 64.3, +36%)\n",
            self.mesh.throughput_mbps(128.0),
            self.custom.throughput_mbps(128.0),
            self.throughput_gain() * 100.0
        ));
        s.push_str(&format!(
            "avg latency (cycles)    {:>8.1}  {:>8.1}  {:>+7.1}%  (11.5 -> 9.6, -17%)\n",
            self.mesh.avg_packet_latency_cycles,
            self.custom.avg_packet_latency_cycles,
            -self.latency_reduction() * 100.0
        ));
        s.push_str(&format!(
            "avg power (mW)          {:>8.2}  {:>8.2}  {:>+7.1}%  (-33%)\n",
            self.mesh.avg_power_watts() * 1e3,
            self.custom.avg_power_watts() * 1e3,
            -self.power_reduction() * 100.0
        ));
        s.push_str(&format!(
            "energy/block (uJ)       {:>8.3}  {:>8.3}  {:>+7.1}%  (5.1 -> 2.5, -51%)\n",
            self.mesh.energy_per_run().microjoules(),
            self.custom.energy_per_run().microjoules(),
            -self.energy_reduction() * 100.0
        ));
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prototype_runs_and_custom_wins() {
        let cmp = AesPrototype::new().run().unwrap();
        // The paper's claim shape: the customized architecture beats the
        // mesh on every axis.
        assert!(
            cmp.custom.total_cycles < cmp.mesh.total_cycles,
            "custom {} vs mesh {} cycles/block",
            cmp.custom.total_cycles,
            cmp.mesh.total_cycles
        );
        assert!(cmp.throughput_gain() > 0.0);
        assert!(cmp.latency_reduction() > 0.0);
        assert!(cmp.energy_reduction() > 0.0);
        let table = cmp.paper_table();
        assert!(table.contains("cycles/block"));
        assert!(cmp.decomposition_report.contains("MGG4"));
    }

    #[test]
    fn deterministic() {
        let a = AesPrototype::new().run().unwrap();
        let b = AesPrototype::new().run().unwrap();
        assert_eq!(a.mesh.total_cycles, b.mesh.total_cycles);
        assert_eq!(a.custom.total_cycles, b.custom.total_cycles);
    }
}
