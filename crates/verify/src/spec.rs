//! Routing specifications: the verifier's input.
//!
//! A [`RoutingSpec`] captures everything the static analysis needs about a
//! fabric — the directed channels that exist, how many virtual channels
//! each carries, and one or more [`RouteSet`]s (routing functions) whose
//! *union* a packet may use. Deterministic routing contributes one set;
//! stochastic policies like O1TURN contribute one set per alternative,
//! because a packet committed to either table holds the corresponding
//! channel/VC resources.

use std::collections::BTreeMap;
use std::fmt;

use noc_graph::NodeId;

/// A routed path with its per-hop virtual channel indices.
pub(crate) type RouteEntry = (Vec<NodeId>, Vec<usize>);

/// One routing function: a `(src, dst) → path` table with a virtual
/// channel index per hop.
///
/// The `vcs` vector of a route must have one entry per *hop* (one fewer
/// than the path has nodes); entry `i` is the VC the packet occupies on
/// channel `(path[i], path[i+1])`.
#[derive(Debug, Clone, PartialEq)]
pub struct RouteSet {
    label: String,
    routes: BTreeMap<(NodeId, NodeId), RouteEntry>,
}

impl RouteSet {
    /// An empty route set with a diagnostic label (e.g. `"xy"`, `"yx"`).
    pub fn new(label: impl Into<String>) -> Self {
        RouteSet {
            label: label.into(),
            routes: BTreeMap::new(),
        }
    }

    /// Adds (or replaces) the route for `(src, dst)` (builder form).
    #[must_use]
    pub fn route(mut self, src: NodeId, dst: NodeId, path: Vec<NodeId>, vcs: Vec<usize>) -> Self {
        self.routes.insert((src, dst), (path, vcs));
        self
    }

    /// Builds a set from parallel route / VC tables, the shape both
    /// `Architecture` and `NocModel` store internally. A pair missing
    /// from `vcs` defaults to VC 0 on every hop — the convention of
    /// single-VC models that never populate a VC table.
    pub fn from_tables(
        label: impl Into<String>,
        routes: &BTreeMap<(NodeId, NodeId), Vec<NodeId>>,
        vcs: &BTreeMap<(NodeId, NodeId), Vec<usize>>,
    ) -> Self {
        let mut set = RouteSet::new(label);
        for (&pair, path) in routes {
            let hop_vcs = vcs
                .get(&pair)
                .cloned()
                .unwrap_or_else(|| vec![0; path.len().saturating_sub(1)]);
            set.routes.insert(pair, (path.clone(), hop_vcs));
        }
        set
    }

    /// The set's diagnostic label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Number of routed pairs.
    pub fn len(&self) -> usize {
        self.routes.len()
    }

    /// Whether the set routes no pairs.
    pub fn is_empty(&self) -> bool {
        self.routes.is_empty()
    }

    pub(crate) fn routes(&self) -> &BTreeMap<(NodeId, NodeId), RouteEntry> {
        &self.routes
    }
}

/// The verifier's input: channels, VC count, route sets, and the traffic
/// pairs that must be routable.
#[derive(Debug, Clone, PartialEq)]
pub struct RoutingSpec {
    name: String,
    channels: Vec<(NodeId, NodeId)>,
    num_vcs: usize,
    route_sets: Vec<RouteSet>,
    required_pairs: Vec<(NodeId, NodeId)>,
}

impl RoutingSpec {
    /// A spec over the given directed channels (sorted and deduplicated)
    /// with `num_vcs` virtual channels per channel (clamped to ≥ 1).
    pub fn new(
        name: impl Into<String>,
        channels: impl IntoIterator<Item = (NodeId, NodeId)>,
        num_vcs: usize,
    ) -> Self {
        let mut channels: Vec<(NodeId, NodeId)> = channels.into_iter().collect();
        channels.sort_unstable();
        channels.dedup();
        RoutingSpec {
            name: name.into(),
            channels,
            num_vcs: num_vcs.max(1),
            route_sets: Vec::new(),
            required_pairs: Vec::new(),
        }
    }

    /// Appends a route set to the union under analysis (builder form).
    #[must_use]
    pub fn route_set(mut self, set: RouteSet) -> Self {
        self.route_sets.push(set);
        self
    }

    /// Declares pairs every route set must cover; missing pairs surface
    /// as [`LintError::UnroutedPair`] (builder form).
    #[must_use]
    pub fn require_pairs(mut self, pairs: impl IntoIterator<Item = (NodeId, NodeId)>) -> Self {
        self.required_pairs.extend(pairs);
        self
    }

    /// Diagnostic name carried into the [`crate::Verdict`] and telemetry.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The directed channels, sorted.
    pub fn channels(&self) -> &[(NodeId, NodeId)] {
        &self.channels
    }

    /// Virtual channels per physical channel (≥ 1).
    pub fn num_vcs(&self) -> usize {
        self.num_vcs
    }

    /// The route sets whose union is analyzed.
    pub fn route_sets(&self) -> &[RouteSet] {
        &self.route_sets
    }

    /// The declared must-route pairs.
    pub fn required_pairs(&self) -> &[(NodeId, NodeId)] {
        &self.required_pairs
    }
}

/// A structural defect found by the route lint pass.
///
/// Any lint error makes the spec **unverifiable**: the dependency
/// analysis only reasons about well-formed routes, so
/// [`crate::Verdict::is_deadlock_free`] is `false` whenever lint errors
/// are present.
#[derive(Debug, Clone, PartialEq)]
pub enum LintError {
    /// The channel list contains a self-loop `(a, a)`.
    SelfLoopChannel {
        /// The offending channel.
        channel: (NodeId, NodeId),
    },
    /// A required pair has no route in the named set.
    UnroutedPair {
        /// Route set label.
        set: String,
        /// Source of the unrouted pair.
        src: NodeId,
        /// Destination of the unrouted pair.
        dst: NodeId,
    },
    /// A route is degenerate: self-routed, shorter than one hop, or its
    /// path does not start at `src` / end at `dst`.
    BadEndpoints {
        /// Route set label.
        set: String,
        /// Route source.
        src: NodeId,
        /// Route destination.
        dst: NodeId,
    },
    /// A route's VC vector does not have one entry per hop.
    VcLengthMismatch {
        /// Route set label.
        set: String,
        /// Route source.
        src: NodeId,
        /// Route destination.
        dst: NodeId,
        /// Hops in the path.
        hops: usize,
        /// Entries in the VC vector.
        vcs: usize,
    },
    /// A route hop traverses a channel the spec does not declare.
    UnknownChannel {
        /// Route set label.
        set: String,
        /// Route source.
        src: NodeId,
        /// Route destination.
        dst: NodeId,
        /// The undeclared channel.
        hop: (NodeId, NodeId),
    },
    /// A hop's VC index is `>= num_vcs`.
    VcOutOfRange {
        /// Route set label.
        set: String,
        /// Route source.
        src: NodeId,
        /// Route destination.
        dst: NodeId,
        /// The out-of-range VC index.
        vc: usize,
        /// The spec's VC count.
        num_vcs: usize,
    },
}

impl fmt::Display for LintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LintError::SelfLoopChannel { channel } => {
                write!(f, "self-loop channel {}->{}", channel.0, channel.1)
            }
            LintError::UnroutedPair { set, src, dst } => {
                write!(f, "pair {src}->{dst} has no route in set '{set}'")
            }
            LintError::BadEndpoints { set, src, dst } => {
                write!(f, "route {src}->{dst} in set '{set}' has bad endpoints")
            }
            LintError::VcLengthMismatch {
                set,
                src,
                dst,
                hops,
                vcs,
            } => write!(
                f,
                "route {src}->{dst} in set '{set}' has {hops} hops but {vcs} VC entries"
            ),
            LintError::UnknownChannel { set, src, dst, hop } => write!(
                f,
                "route {src}->{dst} in set '{set}' uses undeclared channel {}->{}",
                hop.0, hop.1
            ),
            LintError::VcOutOfRange {
                set,
                src,
                dst,
                vc,
                num_vcs,
            } => write!(
                f,
                "route {src}->{dst} in set '{set}' uses VC {vc} but the fabric has {num_vcs}"
            ),
        }
    }
}
