//! # noc-verify — static deadlock-freedom verification
//!
//! Proves synthesized NoC architectures deadlock-free **without running
//! a single simulated cycle**, by the Dally–Seitz argument the paper
//! leans on (Section 4.5): wormhole routing is deadlock-free iff the
//! channel dependency graph induced by the routing function is acyclic,
//! and virtual channels break cycles by splitting each physical channel
//! into independently-arbitrated buffer resources.
//!
//! The plain single-VC channel dependency graph is the wrong object for
//! this codebase: `assign_virtual_channels` deliberately routes *through*
//! physical-channel cycles and breaks them by bumping the VC index, and
//! O1TURN meshes run XY and YX tables on disjoint VC layers. This crate
//! therefore analyzes the **extended CDG**:
//!
//! - one vertex per `(channel, VC)` resource,
//! - an edge for every pair of consecutive hops of every route, placed
//!   in the VC layers the assignment actually uses — intra-layer when
//!   the VC is unchanged, inter-layer at a VC transition,
//! - the **union** of all route sets a packet might follow (both tables
//!   of a stochastic policy), since holding-and-waiting happens on
//!   whichever table the packet committed to.
//!
//! Acyclicity of this graph proves deadlock freedom for the spec. The
//! result is a [`Verdict`] — a diagnostic, not a bool: a detected cycle
//! comes back as a [`CycleWitness`] naming the `(channel, VC)` cycle and,
//! per dependency edge, the `(src, dst)` routes that induce it; a route
//! [`LintError`] pinpoints the structural defect that made the spec
//! unverifiable; [`LayerReport`]s say which VC layers are acyclic on
//! their own (the escape-layer view of multi-VC configs).
//!
//! ```
//! use noc_graph::NodeId;
//! use noc_verify::{verify, RouteSet, RoutingSpec};
//!
//! let n = |i| NodeId(i);
//! // A 4-node ring routed all the way round on one VC: the classic
//! // turnaround deadlock.
//! let channels = [(n(0), n(1)), (n(1), n(2)), (n(2), n(3)), (n(3), n(0))];
//! let mut set = RouteSet::new("ring");
//! for i in 0..4usize {
//!     let path = vec![n(i), n((i + 1) % 4), n((i + 2) % 4)];
//!     set = set.route(n(i), n((i + 2) % 4), path, vec![0, 0]);
//! }
//! let verdict = verify(&RoutingSpec::new("ring", channels, 1).route_set(set));
//! assert!(!verdict.is_deadlock_free());
//! let witness = verdict.cycle.expect("a concrete witness, not a bool");
//! assert_eq!(witness.len(), 4);
//! ```

#![deny(missing_docs)]

mod cdg;
mod spec;
mod verdict;

use std::collections::BTreeMap;

use noc_graph::NodeId;
use noc_telemetry::Telemetry;

pub use spec::{LintError, RouteSet, RoutingSpec};
pub use verdict::{CdgVertex, CycleWitness, LayerReport, RouteRef, Verdict, WitnessEdge};

use cdg::{CleanRoute, ExtendedCdg};

/// Max routes kept per witness edge; [`WitnessEdge::total_routes`] still
/// counts every inducing route.
pub const MAX_WITNESS_ROUTES: usize = 4;

/// Verifies a routing spec, reporting to the process-wide telemetry
/// sink if one is installed.
pub fn verify(spec: &RoutingSpec) -> Verdict {
    verify_with(spec, noc_telemetry::active())
}

/// Verifies a routing spec against an explicit telemetry sink (`None`
/// disables instrumentation).
///
/// Emits a `verify.run` span (with CDG size and outcome fields) and
/// bumps the `verify.runs` / `verify.cycles_found` / `verify.lint_errors`
/// counters.
pub fn verify_with(spec: &RoutingSpec, telemetry: Option<&Telemetry>) -> Verdict {
    let mut span = telemetry.map(|t| t.span("verify.run").field("name", spec.name()));

    let (lint, clean) = lint_routes(spec);
    let cdg = ExtendedCdg::build(spec, &clean);
    let cycle = cdg.find_cycle_witness();
    let layers = cdg.layer_reports();
    let verdict = Verdict {
        name: spec.name().to_string(),
        num_vcs: spec.num_vcs(),
        channels: spec.channels().len(),
        routes_checked: spec.route_sets().iter().map(RouteSet::len).sum(),
        cdg_vertices: cdg.vertex_count(),
        cdg_edges: cdg.edge_count(),
        lint,
        cycle,
        layers,
    };

    if let Some(t) = telemetry {
        t.add("verify.runs", 1);
        if verdict.cycle.is_some() {
            t.add("verify.cycles_found", 1);
        }
        if !verdict.lint.is_empty() {
            t.add("verify.lint_errors", verdict.lint.len() as u64);
        }
    }
    if let Some(span) = &mut span {
        span.add_field("cdg_vertices", verdict.cdg_vertices);
        span.add_field("cdg_edges", verdict.cdg_edges);
        span.add_field("routes", verdict.routes_checked);
        span.add_field("deadlock_free", verdict.is_deadlock_free());
    }
    verdict
}

/// The lint pass: structural validation of every route against the
/// declared channels and VC count, plus required-pair coverage. Returns
/// the errors and the routes clean enough to feed the dependency
/// analysis.
fn lint_routes(spec: &RoutingSpec) -> (Vec<LintError>, Vec<CleanRoute>) {
    let mut errors = Vec::new();
    let channel_index: BTreeMap<(NodeId, NodeId), usize> = spec
        .channels()
        .iter()
        .enumerate()
        .map(|(i, &c)| (c, i))
        .collect();
    for &channel in spec.channels() {
        if channel.0 == channel.1 {
            errors.push(LintError::SelfLoopChannel { channel });
        }
    }
    let mut clean = Vec::new();
    for (set_idx, set) in spec.route_sets().iter().enumerate() {
        let label = set.label();
        for &(src, dst) in spec.required_pairs() {
            if !set.routes().contains_key(&(src, dst)) {
                errors.push(LintError::UnroutedPair {
                    set: label.to_string(),
                    src,
                    dst,
                });
            }
        }
        for (&(src, dst), (path, vcs)) in set.routes() {
            let mut dirty = false;
            if src == dst || path.len() < 2 || path[0] != src || *path.last().unwrap() != dst {
                errors.push(LintError::BadEndpoints {
                    set: label.to_string(),
                    src,
                    dst,
                });
                dirty = true;
            }
            let hops = path.len().saturating_sub(1);
            if vcs.len() != hops {
                errors.push(LintError::VcLengthMismatch {
                    set: label.to_string(),
                    src,
                    dst,
                    hops,
                    vcs: vcs.len(),
                });
                dirty = true;
            }
            let mut channels = Vec::with_capacity(hops);
            for hop in path.windows(2) {
                match channel_index.get(&(hop[0], hop[1])) {
                    Some(&idx) => channels.push(idx),
                    None => {
                        errors.push(LintError::UnknownChannel {
                            set: label.to_string(),
                            src,
                            dst,
                            hop: (hop[0], hop[1]),
                        });
                        dirty = true;
                    }
                }
            }
            for &vc in vcs {
                if vc >= spec.num_vcs() {
                    errors.push(LintError::VcOutOfRange {
                        set: label.to_string(),
                        src,
                        dst,
                        vc,
                        num_vcs: spec.num_vcs(),
                    });
                    dirty = true;
                }
            }
            if !dirty {
                clean.push(CleanRoute {
                    set: set_idx,
                    src,
                    dst,
                    channels,
                    vcs: vcs.clone(),
                });
            }
        }
    }
    (errors, clean)
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_telemetry::Telemetry;

    fn n(i: usize) -> NodeId {
        NodeId(i)
    }

    /// 4-node unidirectional ring channels.
    fn ring_channels() -> Vec<(NodeId, NodeId)> {
        (0..4).map(|i| (n(i), n((i + 1) % 4))).collect()
    }

    /// All four 2-hop routes around the ring, with per-hop VCs chosen by
    /// the caller.
    fn ring_routes(vcs_for: impl Fn(usize, usize) -> usize) -> RouteSet {
        let mut set = RouteSet::new("ring");
        for i in 0..4usize {
            let path = vec![n(i), n((i + 1) % 4), n((i + 2) % 4)];
            let vcs = vec![vcs_for(i, 0), vcs_for(i, 1)];
            set = set.route(n(i), n((i + 2) % 4), path, vcs);
        }
        set
    }

    /// Structural validity of a witness: closed walk, chained channels,
    /// and per-edge route provenance.
    fn assert_witness_valid(witness: &CycleWitness) {
        assert!(witness.len() >= 2, "cycle spans at least two resources");
        assert_eq!(witness.vertices.first(), witness.vertices.last());
        assert_eq!(witness.edges.len(), witness.len());
        for (i, edge) in witness.edges.iter().enumerate() {
            assert_eq!(edge.from, witness.vertices[i]);
            assert_eq!(edge.to, witness.vertices[i + 1]);
            // Consecutive hops of a route share the middle node, so a
            // dependency chain is also a channel chain.
            assert_eq!(edge.from.channel.1, edge.to.channel.0);
            assert!(!edge.routes.is_empty(), "every edge names a witness route");
            assert!(edge.total_routes >= edge.routes.len());
        }
    }

    #[test]
    fn single_vc_ring_is_rejected_with_a_four_cycle_witness() {
        let spec = RoutingSpec::new("ring", ring_channels(), 1).route_set(ring_routes(|_, _| 0));
        let verdict = verify(&spec);
        assert!(!verdict.is_deadlock_free());
        assert!(verdict.lint.is_empty());
        assert!(verdict.layers.len() == 1 && !verdict.layers[0].acyclic);
        assert!(!verdict.escape_layer_acyclic());
        let witness = verdict.cycle.expect("cycle witness");
        assert_eq!(witness.len(), 4);
        assert_witness_valid(&witness);
    }

    #[test]
    fn witness_is_bfs_shortened_to_the_tight_cycle() {
        // A 5-ring turnaround cycle (length 5) plus a 3-cycle chord
        // through node 5 that shares the resource c(1, 2). The ring
        // routes are inserted first, so the DFS proof walks the 5-cycle
        // c(0,1) -> c(1,2) -> c(2,3) -> c(3,4) -> c(4,0) and, unshortened,
        // would report length 5. The witness must instead be the tight
        // triangle c(1,2) -> c(2,5) -> c(5,1).
        let mut channels: Vec<(NodeId, NodeId)> = (0..5).map(|i| (n(i), n((i + 1) % 5))).collect();
        channels.push((n(2), n(5)));
        channels.push((n(5), n(1)));
        let mut set = RouteSet::new("planted");
        for i in 0..5usize {
            let path = vec![n(i), n((i + 1) % 5), n((i + 2) % 5)];
            set = set.route(n(i), n((i + 2) % 5), path, vec![0, 0]);
        }
        set = set
            .route(n(1), n(5), vec![n(1), n(2), n(5)], vec![0, 0])
            .route(n(2), n(1), vec![n(2), n(5), n(1)], vec![0, 0])
            .route(n(5), n(2), vec![n(5), n(1), n(2)], vec![0, 0]);
        let verdict = verify(&RoutingSpec::new("planted", channels, 1).route_set(set));
        assert!(!verdict.is_deadlock_free());
        let witness = verdict.cycle.expect("cycle witness");
        assert_witness_valid(&witness);
        assert_eq!(witness.len(), 3, "witness must be the short cycle");
        let chans: std::collections::BTreeSet<(usize, usize)> = witness.vertices[..witness.len()]
            .iter()
            .map(|v| (v.channel.0.index(), v.channel.1.index()))
            .collect();
        assert_eq!(chans, [(1, 2), (2, 5), (5, 1)].into_iter().collect());
    }

    #[test]
    fn dateline_vc_assignment_clears_the_same_ring() {
        // Crossing the wrap channel (3, 0) bumps the packet to VC 1: the
        // textbook dateline scheme. The single-VC CDG still has the
        // 4-cycle, but the extended CDG is acyclic.
        // Hop `hop` of route `src` traverses channel (src+hop, src+hop+1);
        // the wrap channel (3, 0) and everything after it ride VC 1.
        let set = ring_routes(|src, hop| usize::from(src + hop >= 3));
        let spec = RoutingSpec::new("ring+dateline", ring_channels(), 2).route_set(set);
        let verdict = verify(&spec);
        assert!(verdict.is_deadlock_free(), "{verdict}");
        assert!(verdict.escape_layer_acyclic());
        assert!(verdict.layers.iter().all(|l| l.acyclic));
        assert_eq!(verdict.layers.len(), 2);
    }

    #[test]
    fn o1turn_union_catches_cross_set_cycles() {
        // 2x2 mesh: nodes 0 1 / 2 3, full bidirectional links.
        let channels: Vec<(NodeId, NodeId)> = [(0, 1), (0, 2), (1, 3), (2, 3)]
            .iter()
            .flat_map(|&(a, b)| [(n(a), n(b)), (n(b), n(a))])
            .collect();
        // Each set alone is acyclic; their union closes the turnaround
        // cycle c(0,2) -> c(2,3) -> c(3,1) -> c(1,0) -> c(0,2).
        let xy = RouteSet::new("xy")
            .route(n(1), n(2), vec![n(1), n(0), n(2)], vec![0, 0])
            .route(n(2), n(1), vec![n(2), n(3), n(1)], vec![0, 0]);
        let yx = RouteSet::new("yx")
            .route(n(0), n(3), vec![n(0), n(2), n(3)], vec![0, 0])
            .route(n(3), n(0), vec![n(3), n(1), n(0)], vec![0, 0]);
        let alone = verify(&RoutingSpec::new("xy-only", channels.clone(), 1).route_set(xy.clone()));
        assert!(alone.is_deadlock_free());
        let union = verify(
            &RoutingSpec::new("union", channels, 1)
                .route_set(xy)
                .route_set(yx),
        );
        assert!(!union.is_deadlock_free());
        let witness = union.cycle.expect("union cycle");
        assert_eq!(witness.len(), 4);
        assert_witness_valid(&witness);
        // Both sets appear in the provenance of the witness.
        let sets: std::collections::BTreeSet<&str> = witness
            .edges
            .iter()
            .flat_map(|e| e.routes.iter().map(|r| r.set.as_str()))
            .collect();
        assert!(sets.contains("xy") && sets.contains("yx"));
    }

    #[test]
    fn lint_catches_every_structural_defect() {
        let channels = vec![(n(0), n(1)), (n(1), n(0)), (n(2), n(2))];
        let spec = RoutingSpec::new("lint", channels, 1)
            .route_set(
                RouteSet::new("bad")
                    // unknown channel (1, 2)
                    .route(n(0), n(2), vec![n(0), n(1), n(2)], vec![0, 0])
                    // VC out of range
                    .route(n(0), n(1), vec![n(0), n(1)], vec![1])
                    // VC length mismatch
                    .route(n(1), n(0), vec![n(1), n(0)], vec![])
                    // bad endpoints (self-route)
                    .route(n(1), n(1), vec![n(1)], vec![]),
            )
            .require_pairs([(n(0), n(1)), (n(2), n(0))]);
        let verdict = verify(&spec);
        assert!(!verdict.is_deadlock_free());
        assert!(verdict.cycle.is_none(), "dirty routes never reach the CDG");
        let kinds: Vec<&'static str> = verdict
            .lint
            .iter()
            .map(|e| match e {
                LintError::SelfLoopChannel { .. } => "self_loop",
                LintError::UnroutedPair { .. } => "unrouted",
                LintError::BadEndpoints { .. } => "endpoints",
                LintError::VcLengthMismatch { .. } => "vc_len",
                LintError::UnknownChannel { .. } => "unknown_channel",
                LintError::VcOutOfRange { .. } => "vc_range",
            })
            .collect();
        for kind in [
            "self_loop",
            "unrouted",
            "endpoints",
            "vc_len",
            "unknown_channel",
            "vc_range",
        ] {
            assert!(kinds.contains(&kind), "missing lint kind {kind}: {kinds:?}");
        }
        // Lint errors render to stable one-line diagnostics.
        for line in verdict.render_lint() {
            assert!(!line.is_empty());
        }
    }

    #[test]
    fn required_pairs_must_be_covered_by_every_set() {
        let channels = vec![(n(0), n(1)), (n(1), n(0))];
        let full = RouteSet::new("full")
            .route(n(0), n(1), vec![n(0), n(1)], vec![0])
            .route(n(1), n(0), vec![n(1), n(0)], vec![0]);
        let partial = RouteSet::new("partial").route(n(0), n(1), vec![n(0), n(1)], vec![0]);
        let verdict = verify(
            &RoutingSpec::new("coverage", channels, 1)
                .route_set(full)
                .route_set(partial)
                .require_pairs([(n(0), n(1)), (n(1), n(0))]),
        );
        assert_eq!(verdict.lint.len(), 1);
        assert!(matches!(
            &verdict.lint[0],
            LintError::UnroutedPair { set, src, dst }
                if set == "partial" && *src == n(1) && *dst == n(0)
        ));
    }

    #[test]
    fn single_hop_routes_create_no_dependencies() {
        let channels = vec![(n(0), n(1)), (n(1), n(0))];
        let set = RouteSet::new("pingpong")
            .route(n(0), n(1), vec![n(0), n(1)], vec![0])
            .route(n(1), n(0), vec![n(1), n(0)], vec![0]);
        let verdict = verify(&RoutingSpec::new("pingpong", channels, 1).route_set(set));
        assert!(verdict.is_deadlock_free());
        assert_eq!(verdict.cdg_vertices, 2);
        assert_eq!(verdict.cdg_edges, 0);
        assert_eq!(verdict.routes_checked, 2);
    }

    #[test]
    fn witness_provenance_caps_but_counts_all_routes() {
        // Six routes all traverse the same two consecutive channels;
        // the edge keeps MAX_WITNESS_ROUTES refs but counts all six.
        let mut channels = vec![(n(0), n(1)), (n(1), n(2)), (n(2), n(0))];
        let mut set = RouteSet::new("fanin");
        for i in 0..6usize {
            let dst = n(10 + i);
            channels.push((n(2), dst));
            set = set.route(n(0), dst, vec![n(0), n(1), n(2), dst], vec![0, 0, 0]);
        }
        // Close a cycle through the shared prefix.
        set = set
            .route(n(1), n(0), vec![n(1), n(2), n(0)], vec![0, 0])
            .route(n(2), n(1), vec![n(2), n(0), n(1)], vec![0, 0]);
        let verdict = verify(&RoutingSpec::new("cap", channels, 1).route_set(set));
        let witness = verdict.cycle.expect("cycle");
        assert_witness_valid(&witness);
        let fanin = witness
            .edges
            .iter()
            .find(|e| e.from.channel == (n(0), n(1)) && e.to.channel == (n(1), n(2)))
            .expect("shared prefix edge on the cycle");
        assert_eq!(fanin.routes.len(), MAX_WITNESS_ROUTES);
        assert_eq!(fanin.total_routes, 6);
    }

    #[test]
    fn telemetry_counts_runs_and_cycles() {
        let t = Telemetry::recording();
        let clean = RoutingSpec::new("clean", vec![(n(0), n(1))], 1)
            .route_set(RouteSet::new("s").route(n(0), n(1), vec![n(0), n(1)], vec![0]));
        let cyclic =
            RoutingSpec::new("cyclic", ring_channels(), 1).route_set(ring_routes(|_, _| 0));
        verify_with(&clean, Some(&t));
        verify_with(&cyclic, Some(&t));
        assert_eq!(t.counter_value("verify.runs"), 2);
        assert_eq!(t.counter_value("verify.cycles_found"), 1);
        let events = t.drain();
        let spans: Vec<_> = events.iter().filter(|e| e.name == "verify.run").collect();
        assert_eq!(spans.len(), 2);
    }

    #[test]
    fn verdict_display_names_the_offending_routes() {
        let spec = RoutingSpec::new("ring", ring_channels(), 1).route_set(ring_routes(|_, _| 0));
        let text = verify(&spec).to_string();
        assert!(text.contains("NOT VERIFIED"), "{text}");
        assert!(
            text.contains("cyclic dependency over 4 resources"),
            "{text}"
        );
        assert!(
            text.contains("[ring]"),
            "witness names the route set: {text}"
        );
    }
}
