//! Verification verdicts: witnesses, per-layer reports, and the summary
//! the rest of the stack records.

use std::fmt;

use noc_graph::NodeId;

use crate::spec::LintError;

/// A vertex of the extended channel dependency graph: one `(channel,
/// virtual channel)` buffer resource.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct CdgVertex {
    /// The physical channel.
    pub channel: (NodeId, NodeId),
    /// The virtual channel index on that channel.
    pub vc: usize,
}

impl fmt::Display for CdgVertex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}->{}@vc{}", self.channel.0, self.channel.1, self.vc)
    }
}

/// Identifies one route inside one route set — the provenance unit
/// attached to dependency edges.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct RouteRef {
    /// Route source.
    pub src: NodeId,
    /// Route destination.
    pub dst: NodeId,
    /// Label of the route set the route belongs to.
    pub set: String,
}

impl fmt::Display for RouteRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}->{} [{}]", self.src, self.dst, self.set)
    }
}

/// One dependency edge of a cycle witness, with the routes that induce
/// it.
#[derive(Debug, Clone, PartialEq)]
pub struct WitnessEdge {
    /// Holding resource: the packet occupies this `(channel, VC)`.
    pub from: CdgVertex,
    /// Awaited resource: the packet's next hop needs this `(channel, VC)`.
    pub to: CdgVertex,
    /// Routes whose consecutive hops induce the edge (capped at
    /// [`crate::MAX_WITNESS_ROUTES`]; `total_routes` is uncapped).
    pub routes: Vec<RouteRef>,
    /// Total number of inducing routes, including any beyond the cap.
    pub total_routes: usize,
}

impl fmt::Display for WitnessEdge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} => {} via", self.from, self.to)?;
        for (i, r) in self.routes.iter().enumerate() {
            write!(f, "{}{r}", if i == 0 { " " } else { ", " })?;
        }
        if self.total_routes > self.routes.len() {
            write!(f, " (+{} more)", self.total_routes - self.routes.len())?;
        }
        Ok(())
    }
}

/// A concrete deadlock hazard: a closed cycle of `(channel, VC)`
/// dependencies, each edge annotated with the routes that induce it.
///
/// `vertices` is a closed walk (`vertices[0] == vertices[last]`, at
/// least two distinct resources) and `edges[i]` connects `vertices[i]`
/// to `vertices[i + 1]`.
#[derive(Debug, Clone, PartialEq)]
pub struct CycleWitness {
    /// The cycle as a closed vertex walk.
    pub vertices: Vec<CdgVertex>,
    /// One annotated edge per consecutive vertex pair.
    pub edges: Vec<WitnessEdge>,
}

impl CycleWitness {
    /// Number of distinct resources on the cycle.
    pub fn len(&self) -> usize {
        self.vertices.len().saturating_sub(1)
    }

    /// A witness always has at least two resources; this mirrors `len`.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The edges rendered one per line — the form reports store.
    pub fn render_edges(&self) -> Vec<String> {
        self.edges.iter().map(|e| e.to_string()).collect()
    }
}

impl fmt::Display for CycleWitness {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "cyclic dependency over {} resources:", self.len())?;
        for edge in &self.edges {
            writeln!(f, "  {edge}")?;
        }
        Ok(())
    }
}

/// Acyclicity of one virtual-channel layer considered in isolation
/// (only dependencies that stay on that VC).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LayerReport {
    /// The virtual channel index.
    pub vc: usize,
    /// `(channel, VC)` resources some route occupies in this layer.
    pub vertices: usize,
    /// Intra-layer dependency edges.
    pub edges: usize,
    /// Whether the layer's own dependency graph is acyclic.
    pub acyclic: bool,
}

/// The result of verifying a [`crate::RoutingSpec`].
///
/// The verdict is conservative: [`Verdict::is_deadlock_free`] holds only
/// when the lint pass found no structural defects **and** the extended
/// channel dependency graph over the full route-set union is acyclic.
#[derive(Debug, Clone, PartialEq)]
pub struct Verdict {
    /// The spec's diagnostic name.
    pub name: String,
    /// Virtual channels per physical channel.
    pub num_vcs: usize,
    /// Declared physical channels.
    pub channels: usize,
    /// Routes inspected across all route sets.
    pub routes_checked: usize,
    /// Distinct `(channel, VC)` resources some route occupies.
    pub cdg_vertices: usize,
    /// Distinct dependency edges in the extended CDG.
    pub cdg_edges: usize,
    /// Structural defects; non-empty means the spec is unverifiable.
    pub lint: Vec<LintError>,
    /// A concrete dependency cycle, if one exists.
    pub cycle: Option<CycleWitness>,
    /// Per-VC-layer acyclicity diagnostics (ordered by VC).
    pub layers: Vec<LayerReport>,
}

impl Verdict {
    /// Whether the analysis *proves* deadlock freedom: no lint errors
    /// and an acyclic extended CDG.
    pub fn is_deadlock_free(&self) -> bool {
        self.lint.is_empty() && self.cycle.is_none()
    }

    /// Whether the highest VC layer is acyclic on its own. When routes
    /// only ever move to equal-or-higher VCs, an acyclic top layer acts
    /// as the escape layer that drains any lower-layer contention.
    pub fn escape_layer_acyclic(&self) -> bool {
        self.layers.last().is_none_or(|l| l.acyclic)
    }

    /// Lint errors rendered one per line — the form reports store.
    pub fn render_lint(&self) -> Vec<String> {
        self.lint.iter().map(|e| e.to_string()).collect()
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "verify '{}': {} ({} channels x {} VCs, {} routes, CDG {} vertices / {} edges)",
            self.name,
            if self.is_deadlock_free() {
                "deadlock-free"
            } else {
                "NOT VERIFIED"
            },
            self.channels,
            self.num_vcs,
            self.routes_checked,
            self.cdg_vertices,
            self.cdg_edges,
        )?;
        for err in &self.lint {
            writeln!(f, "  lint: {err}")?;
        }
        if let Some(cycle) = &self.cycle {
            write!(f, "{cycle}")?;
        }
        for layer in &self.layers {
            writeln!(
                f,
                "  layer vc{}: {} vertices, {} edges, {}",
                layer.vc,
                layer.vertices,
                layer.edges,
                if layer.acyclic { "acyclic" } else { "cyclic" }
            )?;
        }
        Ok(())
    }
}
