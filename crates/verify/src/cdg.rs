//! Extended channel dependency graph construction.
//!
//! Vertices are `(channel, VC)` resources, numbered `channel_index *
//! num_vcs + vc` over the spec's sorted channel list. Every pair of
//! consecutive hops of every lint-clean route contributes one edge from
//! the resource the packet holds to the resource it waits for — an
//! intra-layer edge when both hops use the same VC, an inter-layer edge
//! at a VC transition. Each edge remembers (a capped sample of) the
//! routes that induce it, so a detected cycle can be reported with its
//! provenance instead of as a bare boolean.

use std::collections::{BTreeMap, BTreeSet};

use noc_graph::{algo, DiGraph, NodeId};

use crate::spec::RoutingSpec;
use crate::verdict::{CdgVertex, CycleWitness, LayerReport, RouteRef, WitnessEdge};
use crate::MAX_WITNESS_ROUTES;

/// A lint-clean route flattened to its channel indices and per-hop VCs.
pub(crate) struct CleanRoute {
    pub set: usize,
    pub src: NodeId,
    pub dst: NodeId,
    /// Channel index (into the spec's sorted channel list) per hop.
    pub channels: Vec<usize>,
    /// VC per hop, parallel to `channels`.
    pub vcs: Vec<usize>,
}

/// Capped per-edge provenance: which routes induce a dependency.
struct EdgeProvenance {
    routes: Vec<RouteRef>,
    total: usize,
}

/// The extended CDG plus everything needed to extract witnesses and
/// layer diagnostics.
pub(crate) struct ExtendedCdg {
    graph: DiGraph,
    num_vcs: usize,
    channels: Vec<(NodeId, NodeId)>,
    /// `(from vertex id, to vertex id) → provenance`; also the
    /// deduplicated edge set.
    provenance: BTreeMap<(usize, usize), EdgeProvenance>,
    /// Vertex ids some route actually occupies.
    used: BTreeSet<usize>,
}

impl ExtendedCdg {
    pub(crate) fn build(spec: &RoutingSpec, routes: &[CleanRoute]) -> Self {
        let num_vcs = spec.num_vcs();
        let channels = spec.channels().to_vec();
        let mut graph = DiGraph::new(channels.len() * num_vcs);
        let mut provenance: BTreeMap<(usize, usize), EdgeProvenance> = BTreeMap::new();
        let mut used = BTreeSet::new();
        for route in routes {
            let vid = |hop: usize| route.channels[hop] * num_vcs + route.vcs[hop];
            for hop in 0..route.channels.len() {
                used.insert(vid(hop));
            }
            for hop in 1..route.channels.len() {
                let (from, to) = (vid(hop - 1), vid(hop));
                if from == to {
                    continue;
                }
                let entry = provenance.entry((from, to)).or_insert_with(|| {
                    graph.add_edge(NodeId::from(from), NodeId::from(to));
                    EdgeProvenance {
                        routes: Vec::new(),
                        total: 0,
                    }
                });
                entry.total += 1;
                if entry.routes.len() < MAX_WITNESS_ROUTES {
                    entry.routes.push(RouteRef {
                        src: route.src,
                        dst: route.dst,
                        set: spec.route_sets()[route.set].label().to_string(),
                    });
                }
            }
        }
        ExtendedCdg {
            graph,
            num_vcs,
            channels,
            provenance,
            used,
        }
    }

    pub(crate) fn vertex_count(&self) -> usize {
        self.used.len()
    }

    pub(crate) fn edge_count(&self) -> usize {
        self.provenance.len()
    }

    fn vertex(&self, id: usize) -> CdgVertex {
        CdgVertex {
            channel: self.channels[id / self.num_vcs],
            vc: id % self.num_vcs,
        }
    }

    /// Finds a dependency cycle and dresses it up as a witness.
    pub(crate) fn find_cycle_witness(&self) -> Option<CycleWitness> {
        let walk = algo::find_cycle(&self.graph)?;
        let vertices: Vec<CdgVertex> = walk.iter().map(|v| self.vertex(v.index())).collect();
        let edges = walk
            .windows(2)
            .map(|pair| {
                let key = (pair[0].index(), pair[1].index());
                let prov = &self.provenance[&key];
                WitnessEdge {
                    from: self.vertex(key.0),
                    to: self.vertex(key.1),
                    routes: prov.routes.clone(),
                    total_routes: prov.total,
                }
            })
            .collect();
        Some(CycleWitness { vertices, edges })
    }

    /// Per-VC-layer diagnostics: each layer's intra-layer subgraph,
    /// projected onto physical channels, checked for acyclicity on its
    /// own.
    pub(crate) fn layer_reports(&self) -> Vec<LayerReport> {
        (0..self.num_vcs)
            .map(|vc| {
                let mut layer = DiGraph::new(self.channels.len());
                let mut edges = 0;
                for &(from, to) in self.provenance.keys() {
                    if from % self.num_vcs == vc && to % self.num_vcs == vc {
                        layer.add_edge(
                            NodeId::from(from / self.num_vcs),
                            NodeId::from(to / self.num_vcs),
                        );
                        edges += 1;
                    }
                }
                let vertices = self
                    .used
                    .iter()
                    .filter(|&&v| v % self.num_vcs == vc)
                    .count();
                LayerReport {
                    vc,
                    vertices,
                    edges,
                    acyclic: algo::find_cycle(&layer).is_none(),
                }
            })
            .collect()
    }
}
