//! Extended channel dependency graph construction.
//!
//! Vertices are `(channel, VC)` resources, numbered `channel_index *
//! num_vcs + vc` over the spec's sorted channel list. Every pair of
//! consecutive hops of every lint-clean route contributes one edge from
//! the resource the packet holds to the resource it waits for — an
//! intra-layer edge when both hops use the same VC, an inter-layer edge
//! at a VC transition. Each edge remembers (a capped sample of) the
//! routes that induce it, so a detected cycle can be reported with its
//! provenance instead of as a bare boolean.

use std::collections::{BTreeMap, BTreeSet};

use noc_graph::{algo, DiGraph, NodeId};

use crate::spec::RoutingSpec;
use crate::verdict::{CdgVertex, CycleWitness, LayerReport, RouteRef, WitnessEdge};
use crate::MAX_WITNESS_ROUTES;

/// A lint-clean route flattened to its channel indices and per-hop VCs.
pub(crate) struct CleanRoute {
    pub set: usize,
    pub src: NodeId,
    pub dst: NodeId,
    /// Channel index (into the spec's sorted channel list) per hop.
    pub channels: Vec<usize>,
    /// VC per hop, parallel to `channels`.
    pub vcs: Vec<usize>,
}

/// Capped per-edge provenance: which routes induce a dependency.
struct EdgeProvenance {
    routes: Vec<RouteRef>,
    total: usize,
}

/// The extended CDG plus everything needed to extract witnesses and
/// layer diagnostics.
pub(crate) struct ExtendedCdg {
    graph: DiGraph,
    num_vcs: usize,
    channels: Vec<(NodeId, NodeId)>,
    /// `(from vertex id, to vertex id) → provenance`; also the
    /// deduplicated edge set.
    provenance: BTreeMap<(usize, usize), EdgeProvenance>,
    /// Vertex ids some route actually occupies.
    used: BTreeSet<usize>,
}

impl ExtendedCdg {
    pub(crate) fn build(spec: &RoutingSpec, routes: &[CleanRoute]) -> Self {
        let num_vcs = spec.num_vcs();
        let channels = spec.channels().to_vec();
        let mut graph = DiGraph::new(channels.len() * num_vcs);
        let mut provenance: BTreeMap<(usize, usize), EdgeProvenance> = BTreeMap::new();
        let mut used = BTreeSet::new();
        for route in routes {
            let vid = |hop: usize| route.channels[hop] * num_vcs + route.vcs[hop];
            for hop in 0..route.channels.len() {
                used.insert(vid(hop));
            }
            for hop in 1..route.channels.len() {
                let (from, to) = (vid(hop - 1), vid(hop));
                if from == to {
                    continue;
                }
                let entry = provenance.entry((from, to)).or_insert_with(|| {
                    graph.add_edge(NodeId::from(from), NodeId::from(to));
                    EdgeProvenance {
                        routes: Vec::new(),
                        total: 0,
                    }
                });
                entry.total += 1;
                if entry.routes.len() < MAX_WITNESS_ROUTES {
                    entry.routes.push(RouteRef {
                        src: route.src,
                        dst: route.dst,
                        set: spec.route_sets()[route.set].label().to_string(),
                    });
                }
            }
        }
        ExtendedCdg {
            graph,
            num_vcs,
            channels,
            provenance,
            used,
        }
    }

    pub(crate) fn vertex_count(&self) -> usize {
        self.used.len()
    }

    pub(crate) fn edge_count(&self) -> usize {
        self.provenance.len()
    }

    fn vertex(&self, id: usize) -> CdgVertex {
        CdgVertex {
            channel: self.channels[id / self.num_vcs],
            vc: id % self.num_vcs,
        }
    }

    /// Finds a dependency cycle and dresses it up as a witness.
    ///
    /// The DFS back-edge cycle that proves cyclicity can meander — it
    /// follows whatever path the traversal happened to take, so on a
    /// graph with both a tight loop and a long tour it may report the
    /// tour. The witness is therefore **BFS-shortened**: the shortest
    /// cycle through any vertex of the DFS-found cycle, with
    /// deterministic tie-breaks (lowest vertex id first, breadth-first
    /// discovery order within a level).
    pub(crate) fn find_cycle_witness(&self) -> Option<CycleWitness> {
        let walk = algo::find_cycle(&self.graph)?;
        let walk = self.shorten_cycle(&walk);
        let vertices: Vec<CdgVertex> = walk.iter().map(|&v| self.vertex(v)).collect();
        let edges = walk
            .windows(2)
            .map(|pair| {
                let key = (pair[0], pair[1]);
                let prov = &self.provenance[&key];
                WitnessEdge {
                    from: self.vertex(key.0),
                    to: self.vertex(key.1),
                    routes: prov.routes.clone(),
                    total_routes: prov.total,
                }
            })
            .collect();
        Some(CycleWitness { vertices, edges })
    }

    /// Replaces a closed walk with the shortest cycle through any of its
    /// vertices: one BFS per distinct walk vertex over the deduplicated
    /// edge set, keeping the first minimum found (starts scanned in
    /// ascending vertex id). Every walk vertex lies on the DFS cycle, so
    /// a cycle through each start exists and the result is never longer
    /// than the input.
    fn shorten_cycle(&self, walk: &[NodeId]) -> Vec<usize> {
        // Adjacency from the provenance keys: BTreeMap order makes every
        // successor list ascending, so BFS discovery is deterministic.
        let mut succ: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for &(from, to) in self.provenance.keys() {
            succ.entry(from).or_default().push(to);
        }
        let mut starts: Vec<usize> = walk[..walk.len() - 1].iter().map(|v| v.index()).collect();
        starts.sort_unstable();
        starts.dedup();
        let n = self.graph.node_count();
        let mut best: Option<Vec<usize>> = None;
        for &s in &starts {
            if best.as_ref().is_some_and(|b| b.len() <= 3) {
                break; // a 2-cycle (3 walk entries) cannot be beaten
            }
            let mut parent: Vec<usize> = vec![usize::MAX; n];
            parent[s] = s;
            let mut queue = std::collections::VecDeque::from([s]);
            let mut found: Option<Vec<usize>> = None;
            'bfs: while let Some(u) = queue.pop_front() {
                for &t in succ.get(&u).map_or(&[][..], Vec::as_slice) {
                    if t == s {
                        // First closure is minimal: BFS dequeues in
                        // distance order.
                        let mut tail = Vec::new();
                        let mut cur = u;
                        while cur != s {
                            tail.push(cur);
                            cur = parent[cur];
                        }
                        tail.reverse();
                        let mut cycle = vec![s];
                        cycle.extend(tail);
                        cycle.push(s);
                        found = Some(cycle);
                        break 'bfs;
                    }
                    if parent[t] == usize::MAX {
                        parent[t] = u;
                        queue.push_back(t);
                    }
                }
            }
            if let Some(c) = found {
                if best.as_ref().is_none_or(|b| c.len() < b.len()) {
                    best = Some(c);
                }
            }
        }
        best.expect("every vertex of a DFS-found cycle lies on some cycle")
    }

    /// Per-VC-layer diagnostics: each layer's intra-layer subgraph,
    /// projected onto physical channels, checked for acyclicity on its
    /// own.
    pub(crate) fn layer_reports(&self) -> Vec<LayerReport> {
        (0..self.num_vcs)
            .map(|vc| {
                let mut layer = DiGraph::new(self.channels.len());
                let mut edges = 0;
                for &(from, to) in self.provenance.keys() {
                    if from % self.num_vcs == vc && to % self.num_vcs == vc {
                        layer.add_edge(
                            NodeId::from(from / self.num_vcs),
                            NodeId::from(to / self.num_vcs),
                        );
                        edges += 1;
                    }
                }
                let vertices = self
                    .used
                    .iter()
                    .filter(|&&v| v % self.num_vcs == vc)
                    .count();
                LayerReport {
                    vc,
                    vertices,
                    edges,
                    acyclic: algo::find_cycle(&layer).is_none(),
                }
            })
            .collect()
    }
}
