//! Offline stand-in for the `rayon` crate.
//!
//! The build environment has no network access, so this workspace vendors
//! the small subset of rayon's API the search engine uses —
//! [`scope`]/[`Scope::spawn`], [`join`], and [`current_num_threads`] —
//! implemented directly on `std::thread::scope`. There is no work-stealing
//! pool: each `spawn` is an OS thread, which is the right trade-off here
//! because the decomposition engine spawns exactly one long-lived worker
//! per hardware thread and balances work through its own shared frontier.

use std::num::NonZeroUsize;

/// Number of threads rayon would use: the machine's available parallelism.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// A scope in which tasks can be spawned that borrow from the caller's
/// stack frame; all tasks join before [`scope`] returns.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a task; it may itself spawn further tasks through the scope
    /// reference it receives.
    pub fn spawn<F>(&self, body: F)
    where
        F: FnOnce(&Scope<'scope, 'env>) + Send + 'scope,
    {
        let inner = self.inner;
        inner.spawn(move || {
            let child = Scope { inner };
            body(&child);
        });
    }
}

impl std::fmt::Debug for Scope<'_, '_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scope").finish_non_exhaustive()
    }
}

/// Runs `f` with a [`Scope`]; returns once every spawned task finished.
pub fn scope<'env, F, R>(f: F) -> R
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    std::thread::scope(|s| f(&Scope { inner: s }))
}

/// Runs both closures, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        (ra, hb.join().expect("joined closure panicked"))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scope_joins_all_spawns() {
        let counter = AtomicUsize::new(0);
        scope(|s| {
            for _ in 0..8 {
                s.spawn(|_| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn nested_spawns_run() {
        let counter = AtomicUsize::new(0);
        scope(|s| {
            s.spawn(|s| {
                counter.fetch_add(1, Ordering::SeqCst);
                s.spawn(|_| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            });
        });
        assert_eq!(counter.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = join(|| 2 + 2, || "ok");
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
    }

    #[test]
    fn thread_count_is_positive() {
        assert!(current_num_threads() >= 1);
    }
}
