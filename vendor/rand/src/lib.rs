//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so this workspace vendors a
//! minimal, API-compatible subset of `rand` 0.8: the [`Rng`] and
//! [`SeedableRng`] traits, [`rngs::StdRng`] with `seed_from_u64`, uniform
//! `gen_range` over integer and float ranges, and `gen::<f64>()`.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — deterministic
//! per seed, which is all the workspace's seeded workload generators and
//! the simulated-annealing floorplanner require. The streams differ from
//! upstream `rand`'s `StdRng` (ChaCha12); nothing in this repository
//! depends on upstream's exact values.

use std::ops::{Range, RangeInclusive};

/// A random-number generator seedable from integers.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling interface, mirroring the subset of `rand::Rng` this workspace
/// uses.
pub trait Rng {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Samples a value of type `T` from its standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Samples uniformly from `range`, which must be non-empty.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample_uniform(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

/// Types sampleable by [`Rng::gen`].
pub trait Standard {
    /// Draws one value from the type's standard distribution.
    fn sample_standard<G: Rng>(rng: &mut G) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_standard<G: Rng>(rng: &mut G) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample_standard<G: Rng>(rng: &mut G) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample_standard<G: Rng>(rng: &mut G) -> u64 {
        rng.next_u64()
    }
}

/// Ranges sampleable by [`Rng::gen_range`].
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draws one value uniformly from the range.
    fn sample_uniform<G: Rng>(self, rng: &mut G) -> Self::Output;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_uniform<G: Rng>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (reduce(rng.next_u64(), span) as $t)
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_uniform<G: Rng>(self, rng: &mut G) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (reduce(rng.next_u64(), span + 1) as $t)
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, u16, u8, i32);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_uniform<G: Rng>(self, rng: &mut G) -> f64 {
        let u = f64::sample_standard(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange for RangeInclusive<f64> {
    type Output = f64;
    fn sample_uniform<G: Rng>(self, rng: &mut G) -> f64 {
        let u = f64::sample_standard(rng);
        self.start() + u * (self.end() - self.start())
    }
}

/// Unbiased-enough multiply-shift reduction of a uniform `u64` onto
/// `0..span` (Lemire reduction without the rejection step; the workloads
/// sample spans far below 2^32, where the bias is negligible).
fn reduce(x: u64, span: u64) -> u64 {
    ((x as u128 * span as u128) >> 64) as u64
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++
    /// seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_are_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..10);
            assert!((3..10).contains(&v));
            let w = rng.gen_range(1.5f64..=2.5);
            assert!((1.5..=2.5).contains(&w));
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn int_ranges_cover_all_values() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0..4usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
