//! The [`Strategy`] trait and the combinators this workspace uses.

use std::ops::{Range, RangeInclusive};

use rand::Rng;

use crate::test_runner::TestRng;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike upstream proptest there is no value tree / shrinking: a strategy
/// simply draws a value from the runner's RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Feeds generated values into `f` to build a dependent strategy, then
    /// draws from that.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy created by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy created by [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, T, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(usize, u64, u32, u16, u8, i32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
