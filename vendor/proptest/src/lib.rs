//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so this workspace vendors a
//! minimal, API-compatible subset of proptest: the [`proptest!`] macro, the
//! [`strategy::Strategy`] trait with `prop_map`/`prop_flat_map`, numeric
//! range strategies, tuple strategies, [`collection::vec`], [`bool`](mod@bool)
//! strategies, [`sample::select`], and the `prop_assert!`/`prop_assert_eq!`
//! /`prop_assume!` macros.
//!
//! Differences from upstream: cases are generated from a fixed
//! deterministic seed sequence (reproducible across runs and machines) and
//! failing inputs are *not* shrunk — the panic message reports the case
//! number so a failure can be replayed under a debugger by filtering on it.

pub mod strategy;
pub mod test_runner;

/// Collection strategies (`vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Size specification for collection strategies: an exact size or a
    /// half-open / inclusive range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_exclusive: *r.end() + 1,
            }
        }
    }

    /// Strategy producing `Vec`s of `element` with a length drawn from
    /// `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy created by [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = if self.size.lo + 1 >= self.size.hi_exclusive {
                self.size.lo
            } else {
                rng.rng().gen_range(self.size.lo..self.size.hi_exclusive)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Boolean strategies (`ANY`, `weighted`).
pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Strategy producing `true` and `false` with equal probability.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// A fair coin flip.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.rng().gen::<bool>()
        }
    }

    /// Strategy producing `true` with probability `p`.
    pub fn weighted(p: f64) -> Weighted {
        Weighted { p }
    }

    /// Strategy created by [`weighted`].
    #[derive(Debug, Clone, Copy)]
    pub struct Weighted {
        p: f64,
    }

    impl Strategy for Weighted {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.rng().gen_bool(self.p)
        }
    }
}

/// Sampling strategies (`select`).
pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Strategy picking one element of `options` uniformly.
    ///
    /// # Panics
    ///
    /// Panics at generation time if `options` is empty.
    pub fn select<T: Clone + std::fmt::Debug>(options: Vec<T>) -> Select<T> {
        Select { options }
    }

    /// Strategy created by [`select`].
    #[derive(Debug, Clone)]
    pub struct Select<T> {
        options: Vec<T>,
    }

    impl<T: Clone + std::fmt::Debug> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            assert!(!self.options.is_empty(), "select from empty options");
            let i = rng.rng().gen_range(0..self.options.len());
            self.options[i].clone()
        }
    }
}

/// The usual glob import: strategy trait, config, and assertion macros.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body over `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$attr:meta])*
            fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$attr])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut rejected: u32 = 0;
                let mut case: u64 = 0;
                let mut executed: u32 = 0;
                while executed < config.cases {
                    let mut rng = $crate::test_runner::TestRng::for_case(case);
                    case += 1;
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || { $body ::std::result::Result::Ok(()) })();
                    match outcome {
                        ::std::result::Result::Ok(()) => executed += 1,
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(why)) => {
                            rejected += 1;
                            if rejected > config.cases * 16 + 256 {
                                panic!("too many prop_assume rejections (last: {why})");
                            }
                        }
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!("proptest case #{} failed: {}", case - 1, msg);
                        }
                    }
                }
            }
        )*
    };
    (
        $(
            $(#[$attr:meta])*
            fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::ProptestConfig::default())]
            $(
                $(#[$attr])*
                fn $name($($arg in $strat),+) $body
            )*
        }
    };
}

/// Asserts a condition inside a [`proptest!`] body, failing the case (not
/// aborting the process) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left == *right, $($fmt)+);
    }};
}

/// Skips the current case when its generated input does not satisfy a
/// precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}
