//! Case configuration, the per-case RNG, and test-case errors.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Configuration for a [`proptest!`](crate::proptest) block.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of successful (non-rejected) cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    /// Upstream's default case count.
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// The RNG handed to strategies: a deterministic stream per case index, so
/// every run (and every machine) generates the same inputs.
#[derive(Debug)]
pub struct TestRng {
    rng: StdRng,
}

impl TestRng {
    /// The RNG for the `case`-th generated input of a test.
    pub fn for_case(case: u64) -> Self {
        TestRng {
            rng: StdRng::seed_from_u64(
                0x70726f7074657374u64 ^ case.wrapping_mul(0x9e3779b97f4a7c15),
            ),
        }
    }

    /// The underlying generator.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }
}

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case was skipped by `prop_assume!`.
    Reject(String),
    /// The case failed a `prop_assert!`.
    Fail(String),
}
