//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no network access, so this workspace vendors a
//! minimal, API-compatible subset of criterion: [`Criterion`],
//! [`BenchmarkGroup`], [`Bencher`], [`BenchmarkId`], [`black_box`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Measurement is a plain warmup-then-sample loop: each benchmark runs a
//! short warmup, then `sample_size` timed samples whose per-iteration means
//! are aggregated into min/mean/max, printed in a criterion-like format.
//! Collected results stay available via [`Criterion::results`] so bench
//! binaries can export machine-readable summaries (e.g.
//! `BENCH_decompose.json`).

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// One finished benchmark measurement.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Full benchmark id (`group/function` or plain function name).
    pub id: String,
    /// Fastest sample, nanoseconds per iteration.
    pub min_ns: f64,
    /// Mean over samples, nanoseconds per iteration.
    pub mean_ns: f64,
    /// Slowest sample, nanoseconds per iteration.
    pub max_ns: f64,
    /// Total iterations executed across all samples.
    pub iterations: u64,
}

/// Top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
    warmup: Duration,
    measurement_time: Duration,
    results: Vec<BenchResult>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            warmup: Duration::from_millis(200),
            measurement_time: Duration::from_secs(2),
            results: Vec::new(),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the measurement-time budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let result = run_one(
            id,
            self.sample_size,
            self.warmup,
            self.measurement_time,
            |b| f(b),
        );
        self.results.push(result);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: None,
            measurement_time: None,
        }
    }

    /// All measurements recorded so far, in execution order.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Prints a one-line summary per recorded benchmark (no-op placeholder
    /// for upstream's report generation).
    pub fn final_summary(&mut self) {}
}

/// A group of benchmarks sharing a name prefix and sampling settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
    measurement_time: Option<Duration>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    /// Sets the measurement-time budget for benchmarks in this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = Some(d);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into().0);
        let result = run_one(
            &id,
            self.sample_size.unwrap_or(self.criterion.sample_size),
            self.criterion.warmup,
            self.measurement_time
                .unwrap_or(self.criterion.measurement_time),
            |b| f(b),
        );
        self.criterion.results.push(result);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (all reporting already happened per benchmark).
    pub fn finish(self) {}
}

/// A benchmark identifier (a plain string in this subset).
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id rendering `parameter` (for per-size sweeps).
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }

    /// An id with a function name and a parameter.
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{function}/{parameter}"))
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Times closures passed to [`Bencher::iter`].
#[derive(Debug, Default)]
pub struct Bencher {
    samples_ns: Vec<f64>,
    iterations: u64,
    sample_size: usize,
    warmup: Duration,
    measurement_time: Duration,
}

impl Bencher {
    /// Measures `f`, running it repeatedly: a short warmup, then timed
    /// samples until the sample count or time budget is reached.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warmup: at least one run; keep going until the warmup budget is
        // spent, estimating the per-iteration time as we go.
        let warmup_start = Instant::now();
        let mut warmup_iters: u64 = 0;
        loop {
            black_box(f());
            warmup_iters += 1;
            if warmup_start.elapsed() >= self.warmup {
                break;
            }
        }
        let per_iter = warmup_start.elapsed().as_secs_f64() / warmup_iters as f64;
        // Pick a batch size so one sample costs roughly
        // measurement_time / sample_size.
        let sample_budget = self.measurement_time.as_secs_f64() / self.sample_size.max(1) as f64;
        let batch = ((sample_budget / per_iter.max(1e-9)) as u64).clamp(1, 1_000_000);
        let deadline = Instant::now() + self.measurement_time;
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let dt = t0.elapsed();
            self.samples_ns.push(dt.as_nanos() as f64 / batch as f64);
            self.iterations += batch;
            if Instant::now() >= deadline && !self.samples_ns.is_empty() {
                break;
            }
        }
    }
}

fn run_one<F>(
    id: &str,
    sample_size: usize,
    warmup: Duration,
    measurement_time: Duration,
    mut f: F,
) -> BenchResult
where
    F: FnMut(&mut Bencher),
{
    let mut b = Bencher {
        samples_ns: Vec::new(),
        iterations: 0,
        sample_size,
        warmup,
        measurement_time,
    };
    f(&mut b);
    let (min, mean, max) = if b.samples_ns.is_empty() {
        (f64::NAN, f64::NAN, f64::NAN)
    } else {
        let min = b.samples_ns.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = b
            .samples_ns
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max);
        let mean = b.samples_ns.iter().sum::<f64>() / b.samples_ns.len() as f64;
        (min, mean, max)
    };
    println!(
        "{id:<50} time: [{} {} {}]",
        fmt_ns(min),
        fmt_ns(mean),
        fmt_ns(max)
    );
    BenchResult {
        id: id.to_string(),
        min_ns: min,
        mean_ns: mean,
        max_ns: max,
        iterations: b.iterations,
    }
}

fn fmt_ns(ns: f64) -> String {
    if !ns.is_finite() {
        "n/a".to_string()
    } else if ns < 1e3 {
        format!("{ns:.2} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Bundles benchmark functions into a single runner, mirroring upstream.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Generates `main` for a bench target (`harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::default();
            $($group(&mut criterion);)+
            criterion.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_a_result() {
        let mut c = Criterion::default();
        c.sample_size(3).measurement_time(Duration::from_millis(20));
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        assert_eq!(c.results().len(), 1);
        assert!(c.results()[0].mean_ns > 0.0);
        assert!(c.results()[0].iterations > 0);
    }

    #[test]
    fn groups_prefix_ids() {
        let mut c = Criterion::default();
        c.sample_size(2).measurement_time(Duration::from_millis(10));
        let mut g = c.benchmark_group("grp");
        g.sample_size(2);
        g.bench_with_input(BenchmarkId::from_parameter(5), &5u32, |b, &x| {
            b.iter(|| x * 2)
        });
        g.finish();
        assert_eq!(c.results()[0].id, "grp/5");
    }
}
