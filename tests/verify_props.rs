//! Property and cross-check tests for the `noc-verify` static deadlock
//! analyzer, run against the facade:
//!
//! * planted cyclic routings (turnaround rings, mutated mesh tables) are
//!   always rejected, and every rejection carries a *valid* witness — a
//!   closed walk over `(channel, VC)` resources whose edges chain and
//!   name their inducing routes;
//! * the soundness cross-check: any model the verifier certifies must
//!   never raise [`SimError::Deadlock`] in the cycle-accurate simulator,
//!   across a traffic × seed matrix. A counterexample is diagnosed with
//!   the simulator's blocked-buffer snapshot.

use std::collections::BTreeMap;

use noc::prelude::*;
use noc::sim::{traffic, SimError};
use noc::verify::CycleWitness;
use noc::workloads::pajek;
use proptest::prelude::*;

/// A witness is only evidence if it is internally consistent: a closed
/// vertex walk, one edge per consecutive pair, each edge a real "holds
/// A, awaits B" dependency (B's channel leaves where A's channel ends)
/// induced by at least one named route.
fn assert_witness_valid(witness: &CycleWitness) {
    assert!(
        witness.len() >= 2,
        "a dependency cycle needs >= 2 resources"
    );
    assert_eq!(witness.vertices.first(), witness.vertices.last());
    assert_eq!(witness.edges.len(), witness.vertices.len() - 1);
    for (i, edge) in witness.edges.iter().enumerate() {
        assert_eq!(edge.from, witness.vertices[i]);
        assert_eq!(edge.to, witness.vertices[i + 1]);
        assert_eq!(
            edge.from.channel.1, edge.to.channel.0,
            "consecutive hops must share the intermediate node"
        );
        assert!(!edge.routes.is_empty(), "edge carries no inducing route");
        assert!(edge.total_routes >= edge.routes.len());
    }
}

/// Unidirectional `n`-ring where every node sends `span` hops ahead on a
/// single VC. For `span >= 2` the routes chain every channel into the
/// canonical wormhole dependency cycle.
fn ring_model(n: usize, span: usize) -> NocModel {
    let topology = DiGraph::from_edges(n, (0..n).map(|i| (i, (i + 1) % n))).expect("ring topology");
    let mut routes = BTreeMap::new();
    for i in 0..n {
        let path: Vec<NodeId> = (0..=span).map(|h| NodeId((i + h) % n)).collect();
        routes.insert((NodeId(i), NodeId((i + span) % n)), path);
    }
    NocModel::from_parts(
        format!("ring{n}+{span}"),
        topology,
        routes,
        BTreeMap::new(),
        1.0,
    )
}

/// A 3x3 mesh whose per-pair routes are dimension-ordered either X-then-Y
/// or Y-then-X, chosen per pair by `mask` (bit k = pair k routed YX).
/// All-XY and all-YX are deadlock-free; mixtures generally close
/// turnaround cycles — exactly the space a static verifier must split
/// correctly.
fn mutated_mesh(mask: u128) -> NocModel {
    const COLS: usize = 3;
    const ROWS: usize = 3;
    let id = |x: usize, y: usize| y * COLS + x;
    let mut edges = Vec::new();
    for y in 0..ROWS {
        for x in 0..COLS {
            if x + 1 < COLS {
                edges.push((id(x, y), id(x + 1, y)));
                edges.push((id(x + 1, y), id(x, y)));
            }
            if y + 1 < ROWS {
                edges.push((id(x, y), id(x, y + 1)));
                edges.push((id(x, y + 1), id(x, y)));
            }
        }
    }
    let topology = DiGraph::from_edges(COLS * ROWS, edges).expect("mesh topology");
    let mut routes = BTreeMap::new();
    let mut pair_idx = 0u32;
    for src in 0..COLS * ROWS {
        for dst in 0..COLS * ROWS {
            if src == dst {
                continue;
            }
            let (sx, sy) = (src % COLS, src / COLS);
            let (dx, dy) = (dst % COLS, dst / COLS);
            let yx = mask >> pair_idx & 1 == 1;
            pair_idx += 1;
            let mut path = vec![id(sx, sy)];
            let (mut x, mut y) = (sx, sy);
            let walk_x = |path: &mut Vec<usize>, x: &mut usize, y: usize| {
                while *x != dx {
                    *x = if dx > *x { *x + 1 } else { *x - 1 };
                    path.push(id(*x, y));
                }
            };
            let walk_y = |path: &mut Vec<usize>, x: usize, y: &mut usize| {
                while *y != dy {
                    *y = if dy > *y { *y + 1 } else { *y - 1 };
                    path.push(id(x, *y));
                }
            };
            if yx {
                walk_y(&mut path, x, &mut y);
                walk_x(&mut path, &mut x, y);
            } else {
                walk_x(&mut path, &mut x, y);
                walk_y(&mut path, x, &mut y);
            }
            routes.insert(
                (NodeId(src), NodeId(dst)),
                path.into_iter().map(NodeId).collect(),
            );
        }
    }
    NocModel::from_parts(
        format!("mesh3-mut-{mask:018x}"),
        topology,
        routes,
        BTreeMap::new(),
        2.0,
    )
}

/// Runs `model` under uniform-random traffic and fails loudly — with the
/// simulator's blocked-buffer snapshot — if it deadlocks despite holding
/// a clean static verdict.
fn assert_never_deadlocks(model: &NocModel, events: Vec<noc::sim::TrafficEvent>, context: &str) {
    let energy = EnergyModel::new(TechnologyProfile::cmos_180nm());
    match Simulator::new(model, SimConfig::default(), energy).run(events) {
        Ok(_) => {}
        Err(SimError::Deadlock {
            cycle,
            undelivered,
            blocked,
        }) => {
            let snapshot: Vec<String> = blocked
                .iter()
                .map(|b| {
                    format!(
                        "{}->{}@vc{} pkt{} hop{} occ{}",
                        b.channel.0, b.channel.1, b.vc, b.packet, b.hop, b.occupancy
                    )
                })
                .collect();
            panic!(
                "verifier certified {context} but the simulator deadlocked at cycle {cycle} \
                 ({undelivered} undelivered); blocked buffers: [{}]",
                snapshot.join(", ")
            );
        }
        Err(other) => panic!("{context}: unexpected sim failure: {other}"),
    }
}

#[test]
fn turnaround_rings_are_rejected_with_valid_witnesses() {
    for n in 3..=8 {
        for span in 2..n {
            let verdict = ring_model(n, span).verify();
            assert!(
                !verdict.is_deadlock_free(),
                "single-VC ring{n}+{span} must be rejected"
            );
            let witness = verdict
                .cycle
                .as_ref()
                .unwrap_or_else(|| panic!("ring{n}+{span} rejected without a witness cycle"));
            assert_witness_valid(witness);
            // The ring's cycle covers every channel exactly once.
            assert_eq!(witness.len(), n, "ring{n}+{span}");
        }
    }
}

#[test]
fn dateline_vc_split_clears_the_ring_the_single_vc_view_flags() {
    // Same 4-ring, but hops crossing the wraparound channel (and beyond)
    // ride VC 1 — the paper's Section 4.5 escape construction. The
    // verifier must certify it; the deprecated single-VC CDG would not.
    let n = 4;
    let topology = DiGraph::from_edges(n, (0..n).map(|i| (i, (i + 1) % n))).expect("ring topology");
    let mut routes = BTreeMap::new();
    for i in 0..n {
        let path: Vec<NodeId> = (0..=2).map(|h| NodeId((i + h) % n)).collect();
        routes.insert((NodeId(i), NodeId((i + 2) % n)), path);
    }
    let spec =
        noc::verify::RoutingSpec::new("dateline-ring", topology.edges().map(|e| (e.src, e.dst)), 2)
            .route_set({
                let mut set = noc::verify::RouteSet::new("dateline");
                for (&(src, dst), path) in &routes {
                    let vcs: Vec<usize> = (0..path.len() - 1)
                        .map(|hop| usize::from(src.0 + hop >= n - 1))
                        .collect();
                    set = set.route(src, dst, path.clone(), vcs);
                }
                set
            });
    let verdict = noc::verify::verify(&spec);
    assert!(verdict.is_deadlock_free(), "{verdict}");
    assert!(verdict.escape_layer_acyclic());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Soundness over the mutated-mesh space: whatever XY/YX mixture the
    /// mask picks, a *certified* table never deadlocks in simulation, and
    /// a rejected one always explains itself with a valid witness.
    #[test]
    fn certified_mesh_mutations_never_deadlock(
        lo in 0u64..u64::MAX,
        hi in 0u64..u64::MAX,
        bits in 0u32..6,
        seed in 0u64..1000,
    ) {
        // `bits == 0` draws a dense random mask — almost always cyclic,
        // exercising the witness path. Otherwise only `bits` pairs are
        // flipped to YX — frequently still certified, exercising the
        // simulation cross-check.
        let mask = if bits == 0 {
            (hi as u128) << 64 | lo as u128
        } else {
            (0..bits).fold(0u128, |m, k| m | 1u128 << ((lo >> (k * 7)) % 72))
        };
        let model = mutated_mesh(mask);
        let verdict = model.verify();
        if verdict.is_deadlock_free() {
            let events = traffic::uniform_random(model.node_count(), 150, 64, seed);
            assert_never_deadlocks(&model, events, &format!("mesh mask {mask:#x}"));
        } else {
            let witness = verdict.cycle.as_ref().expect("rejection carries a witness");
            assert_witness_valid(witness);
        }
    }
}

#[test]
fn mesh_mutation_space_contains_both_verdicts() {
    // The property above must not be vacuous: the mask space holds both
    // certified tables (pure XY, pure YX) and rejected ones.
    assert!(mutated_mesh(0).verify().is_deadlock_free());
    assert!(mutated_mesh(u128::MAX).verify().is_deadlock_free());
    let mixed = (0..128).step_by(2).fold(0u128, |m, k| m | 1 << k);
    assert!(!mutated_mesh(mixed).verify().is_deadlock_free());
}

#[test]
fn certified_synthesized_architectures_never_deadlock() {
    // The campaign gate's soundness, end to end: synthesize real
    // workloads, demand a clean static verdict, then drive the exact
    // simulation-ready model across a traffic x seed matrix.
    let workloads: Vec<(&str, Acg)> = vec![
        (
            "gossip6",
            Acg::from_graph_uniform(DiGraph::complete(6), EdgeDemand::from_volume(64.0)),
        ),
        (
            "planted10",
            pajek::planted(&pajek::PlantedConfig {
                n: 10,
                gossip4: 1,
                broadcast4: 1,
                broadcast3: 1,
                loops4: 1,
                noise_prob: 0.1,
                volume: 16.0,
                seed: 11,
            }),
        ),
        (
            "planted13",
            pajek::planted(&pajek::PlantedConfig {
                n: 13,
                gossip4: 2,
                broadcast4: 0,
                broadcast3: 2,
                loops4: 1,
                noise_prob: 0.05,
                volume: 8.0,
                seed: 29,
            }),
        ),
    ];
    for (name, acg) in workloads {
        let pairs: Vec<(NodeId, NodeId)> = acg
            .demands()
            .filter(|(_, d)| d.volume > 0.0)
            .map(|(e, _)| (e.src, e.dst))
            .collect();
        let result = SynthesisFlow::new(acg)
            .seed(7)
            .run()
            .unwrap_or_else(|e| panic!("{name}: synthesis failed: {e}"));

        // Both verdicts — the architecture's own and the compiled sim
        // model's (primary table + VC assignment) — must be clean.
        let arch_verdict = result.architecture.verify();
        assert!(arch_verdict.is_deadlock_free(), "{name}: {arch_verdict}");
        let model = result.noc_model();
        let model_verdict = model.verify();
        assert!(model_verdict.is_deadlock_free(), "{name}: {model_verdict}");

        for seed in [1, 9, 23] {
            for rate in [0.05, 0.35] {
                let events = traffic::bernoulli_pairs(&pairs, 250, rate, 64, seed);
                assert_never_deadlocks(
                    &model,
                    events,
                    &format!("{name} (seed {seed}, rate {rate})"),
                );
            }
        }
    }
}
