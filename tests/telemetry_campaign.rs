//! Trace reconstruction at the campaign and coordinator layers: the
//! event stream must account for every scenario dealt, synthesized and
//! measured — and recording it must never change the front.
//!
//! Every handle here is an explicit per-run [`Telemetry`] (the
//! `.telemetry()` builders), not the process-wide one: the global
//! installs at most once per process, and these tests run concurrently
//! under the default test runner. The global path is proven in
//! `telemetry_stream.rs` and by the CI `--trace` smoke run.

use std::collections::BTreeSet;
use std::path::PathBuf;

use noc_explore::coordinate::{coordinate, CoordinatorConfig, ThreadTransport};
use noc_explore::prelude::*;
use noc_telemetry::{Event, EventKind, Field, Telemetry};

fn count(trace: &[Event], kind: EventKind, name: &str) -> usize {
    trace
        .iter()
        .filter(|e| e.kind == kind && e.name == name)
        .count()
}

fn u64_field(event: &Event, key: &str) -> u64 {
    match event.fields.iter().find(|(k, _)| k == key) {
        Some((_, Field::U64(v))) => *v,
        other => panic!("{} has no u64 field {key:?} ({other:?})", event.name),
    }
}

#[test]
fn campaign_trace_accounts_for_every_scenario_and_changes_nothing() {
    let baseline = Campaign::new(ScenarioGrid::smoke()).threads(1).run();
    let tel = Telemetry::recording();
    let traced = Campaign::new(ScenarioGrid::smoke())
        .threads(1)
        .telemetry(tel.clone())
        .run();

    // Equivalence first: an attached trace must not perturb the results.
    assert_eq!(traced.front, baseline.front, "tracing changed the front");
    assert_eq!(traced.hypervolume, baseline.hypervolume);
    assert_eq!(traced.points.len(), baseline.points.len());

    assert_eq!(tel.counter_value("campaign.plans"), 1);
    assert_eq!(
        tel.counter_value("campaign.points"),
        traced.points.len() as u64
    );
    let trace = tel.take_trace();

    // One run span wrapping the whole plan, with the grid size on it.
    let runs: Vec<&Event> = trace
        .iter()
        .filter(|e| e.kind == EventKind::Span && e.name == "campaign.run")
        .collect();
    assert_eq!(runs.len(), 1);
    assert_eq!(u64_field(runs[0], "scenarios"), traced.points.len() as u64);
    assert_eq!(u64_field(runs[0], "carried"), 0);

    // Synthesis runs once per unique synthesis key; measurement once per
    // scenario; the difference is exactly the reported artifact reuse.
    let synth = count(&trace, EventKind::Span, "campaign.synthesize");
    let measured = count(&trace, EventKind::Span, "campaign.measure");
    assert_eq!(measured, traced.points.len());
    assert_eq!(synth, traced.flows_synthesized);
    assert_eq!(measured - synth, traced.synthesis_reused);

    // Every scenario id appears on exactly one measure span.
    let ids: BTreeSet<u64> = trace
        .iter()
        .filter(|e| e.kind == EventKind::Span && e.name == "campaign.measure")
        .map(|e| u64_field(e, "scenario_id"))
        .collect();
    assert_eq!(ids.len(), measured, "duplicate scenario_id in the stream");
    assert_eq!(ids, (0..measured as u64).collect());

    // The cache rollup event matches the report's own statistics.
    let rollups: Vec<&Event> = trace
        .iter()
        .filter(|e| e.kind == EventKind::Event && e.name == "campaign.match_cache")
        .collect();
    assert_eq!(rollups.len(), 1);
    let hits: u64 = traced.match_cache.iter().map(|c| c.hits).sum();
    let misses: u64 = traced.match_cache.iter().map(|c| c.misses).sum();
    assert_eq!(u64_field(rollups[0], "hits"), hits);
    assert_eq!(u64_field(rollups[0], "misses"), misses);
}

#[test]
fn coordinator_trace_mirrors_the_wave_records() {
    let campaign = Campaign::new(ScenarioGrid::smoke());
    let work: PathBuf = std::env::temp_dir().join(format!("noc_tel_coord_{}", std::process::id()));
    std::fs::remove_dir_all(&work).ok();
    let tel = Telemetry::recording();
    let config = CoordinatorConfig::new(3)
        .work_dir(&work)
        .telemetry(tel.clone());
    let mut transport = ThreadTransport::new(campaign.clone());
    let report = coordinate(&campaign, &config, &mut transport).expect("coordination");
    std::fs::remove_dir_all(&work).ok();
    let provenance = report.coordinator.as_ref().expect("coordinator record");
    let trace = tel.take_trace();

    // A healthy fleet: one deal and one completion per worker, a wave
    // span per recorded wave, and no kills, salvages or re-deals.
    assert_eq!(count(&trace, EventKind::Event, "coordinator.deal"), 3);
    assert_eq!(count(&trace, EventKind::Event, "coordinator.complete"), 3);
    assert_eq!(count(&trace, EventKind::Event, "coordinator.kill"), 0);
    assert_eq!(count(&trace, EventKind::Event, "coordinator.salvage"), 0);
    assert_eq!(count(&trace, EventKind::Event, "coordinator.redeal"), 0);
    assert_eq!(
        count(&trace, EventKind::Span, "coordinator.wave"),
        provenance.waves.len()
    );

    // The dealt id lists partition the grid: every scenario id exactly
    // once, covering 0..n — the stream alone reconstructs the deal.
    let mut ids: BTreeSet<u64> = BTreeSet::new();
    let mut dealt = 0u64;
    for event in trace
        .iter()
        .filter(|e| e.kind == EventKind::Event && e.name == "coordinator.deal")
    {
        assert_eq!(u64_field(event, "wave"), 0);
        let csv = match event.fields.iter().find(|(k, _)| k == "ids") {
            Some((_, Field::Str(s))) => s.clone(),
            other => panic!("deal event without ids csv ({other:?})"),
        };
        for id in csv.split(',') {
            assert!(
                ids.insert(id.parse().expect("numeric scenario id")),
                "id {id} dealt twice"
            );
            dealt += 1;
        }
        assert_eq!(u64_field(event, "scenarios"), csv.split(',').count() as u64);
    }
    assert_eq!(ids, (0..dealt).collect());
    assert_eq!(dealt as usize, report.points.len());

    // The wave span totals agree with the provenance record.
    let wave = trace
        .iter()
        .find(|e| e.kind == EventKind::Span && e.name == "coordinator.wave")
        .expect("wave span");
    assert_eq!(u64_field(wave, "completed"), 3);
    assert_eq!(u64_field(wave, "killed"), 0);
    assert_eq!(u64_field(wave, "redealt"), 0);
}
