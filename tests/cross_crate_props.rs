//! Cross-crate property tests: invariants that must hold for *any*
//! application graph across the whole pipeline.

use noc::prelude::*;
use noc::sim::traffic;
use noc::workloads::pajek;
use proptest::prelude::*;

fn arb_planted_acg() -> impl Strategy<Value = Acg> {
    (6usize..=14, 0u64..200, 0usize..=2, 0usize..=2, 0usize..=2).prop_map(
        |(n, seed, gossips, bcasts, loops)| {
            pajek::planted(&pajek::PlantedConfig {
                n,
                gossip4: gossips,
                broadcast4: bcasts,
                broadcast3: 1,
                loops4: loops,
                noise_prob: 0.05,
                volume: 8.0,
                seed,
            })
        },
    )
}

fn grid_flow(acg: &Acg) -> noc::FlowResult {
    let side = (acg.core_count() as f64).sqrt().ceil() as usize;
    SynthesisFlow::new(acg.clone())
        .placement(Placement::grid(side, side, 2.0, 2.0))
        .run()
        .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Decompositions conserve edges: covered + remainder = the input ACG,
    /// with no edge lost or duplicated.
    #[test]
    fn decomposition_conserves_edges(acg in arb_planted_acg()) {
        let result = grid_flow(&acg);
        prop_assert_eq!(
            result.decomposition.all_edges(&CommLibrary::standard()),
            acg.graph().edge_vec()
        );
    }

    /// Total cost always equals the sum of matching costs plus the
    /// remainder cost (Equation 3).
    #[test]
    fn cost_is_additive(acg in arb_planted_acg()) {
        let result = grid_flow(&acg);
        let d = &result.decomposition;
        let sum: f64 = d.matchings.iter().map(|m| m.cost.value()).sum::<f64>()
            + d.remainder_cost.value();
        prop_assert!((d.total_cost.value() - sum).abs() < 1e-9);
    }

    /// Every ACG pair has a route on the synthesized architecture, running
    /// entirely over instantiated channels from src to dst.
    #[test]
    fn architecture_routes_are_valid(acg in arb_planted_acg()) {
        let result = grid_flow(&acg);
        for (e, _) in acg.demands() {
            let route = result.architecture.route(e.src, e.dst)
                .unwrap_or_else(|| panic!("no route for {e}"));
            prop_assert_eq!(route[0], e.src);
            prop_assert_eq!(*route.last().unwrap(), e.dst);
            for w in route.windows(2) {
                prop_assert!(result.architecture.topology().has_edge(w[0], w[1]));
            }
        }
    }

    /// Per-VC channel ordering: the VC assignment is non-decreasing along
    /// every route (the deadlock-freedom invariant).
    #[test]
    fn vc_assignment_is_monotone(acg in arb_planted_acg()) {
        let result = grid_flow(&acg);
        let (assignment, vcs) = result.architecture.assign_virtual_channels();
        prop_assert!(vcs >= 1);
        for seq in assignment.values() {
            for w in seq.windows(2) {
                prop_assert!(w[1] >= w[0]);
            }
        }
    }

    /// The simulator conserves flits and delivers every packet of an ACG
    /// iteration on the synthesized network.
    #[test]
    fn simulation_conserves_flits(acg in arb_planted_acg()) {
        prop_assume!(acg.graph().edge_count() > 0);
        let result = grid_flow(&acg);
        let model = result.noc_model();
        let energy = EnergyModel::new(TechnologyProfile::cmos_180nm());
        let report = Simulator::new(&model, SimConfig::default(), energy)
            .run(traffic::acg_iteration(&acg))
            .unwrap();
        prop_assert_eq!(report.packets_delivered, acg.graph().edge_count());
        prop_assert_eq!(report.flits_injected, report.flits_ejected);
        // Energy is monotone in volume: strictly positive here.
        prop_assert!(report.energy.total().joules() > 0.0);
    }

    /// Mesh and custom architectures deliver identical payloads for the
    /// same traffic (delivery is architecture-independent).
    #[test]
    fn delivery_is_architecture_independent(acg in arb_planted_acg()) {
        prop_assume!(acg.graph().edge_count() > 0);
        let result = grid_flow(&acg);
        let custom = result.noc_model();
        let side = (acg.core_count() as f64).sqrt().ceil() as usize;
        let mesh = NocModel::mesh(side, side.max(1), 2.0);
        // Mesh may have more nodes than the ACG; traffic only uses ACG ids.
        let energy = EnergyModel::new(TechnologyProfile::cmos_180nm());
        let events = traffic::acg_iteration(&acg);
        let custom_report = Simulator::new(&custom, SimConfig::default(), energy.clone())
            .run(events.clone())
            .unwrap();
        let mesh_report = Simulator::new(&mesh, SimConfig::default(), energy)
            .run(events)
            .unwrap();
        prop_assert_eq!(custom_report.payload_bits, mesh_report.payload_bits);
        prop_assert_eq!(custom_report.packets_delivered, mesh_report.packets_delivered);
    }

    /// The branch-and-bound never returns a worse decomposition than the
    /// trivial all-remainder one.
    #[test]
    fn never_worse_than_all_remainder(acg in arb_planted_acg()) {
        let result = grid_flow(&acg);
        // All-remainder cost under Links = directed edge count.
        let trivial = acg.graph().edge_count() as f64;
        prop_assert!(
            result.decomposition.total_cost.value() <= trivial + 1e-9,
            "cost {} worse than trivial {}",
            result.decomposition.total_cost.value(),
            trivial
        );
    }
}
