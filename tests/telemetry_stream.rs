//! The telemetry contract, proven on the real decomposer: an installed
//! trace must never change engine results, the event stream must be
//! deterministic in everything but its timestamps, and the JSON Lines
//! wire format must round-trip byte-identically.
//!
//! The process-wide handle installs at most once per process, so every
//! assertion that needs a "before install" and an "after install" state
//! lives in ONE test function, sequenced explicitly.

use noc::prelude::*;
use noc::telemetry::{self, Event, EventKind, Telemetry};
use noc::workloads::pajek;

fn grid_cost_model(acg: &Acg) -> CostModel {
    let side = (acg.core_count() as f64).sqrt().ceil() as usize;
    CostModel::new(
        EnergyModel::new(TechnologyProfile::cmos_180nm()),
        Placement::grid(side, side, 2.0, 2.0),
        Objective::Links,
    )
}

fn decompose_fig5() -> Decomposition {
    let acg = pajek::fig5_benchmark();
    let library = CommLibrary::standard();
    Decomposer::new(&acg, &library, grid_cost_model(&acg))
        .run()
        .best
        .expect("fig5 decomposes")
}

/// The deterministic projection of a drained event: everything except
/// `seq`/`t_us`/`dur_us` (sequence numbers shift with interleaving and
/// wall-clock values never repeat; names, kinds, snapshot values and
/// typed fields must).
fn deterministic_view(events: &[Event]) -> Vec<(&'static str, String, Option<u64>, String)> {
    events
        .iter()
        .map(|e| {
            let fields = e
                .fields
                .iter()
                .map(|(k, v)| format!("{k}={v:?}"))
                .collect::<Vec<_>>()
                .join(",");
            (e.kind.label(), e.name.clone(), e.value, fields)
        })
        .collect()
}

#[test]
fn traced_decomposition_is_equivalent_and_the_stream_round_trips() {
    // 1. Baseline: no handle installed — the untraced engine result.
    let baseline = decompose_fig5();

    // 2. Install the process-wide recording handle. First install wins;
    //    a second (and a disabled one) must refuse without clobbering.
    assert!(telemetry::install(Telemetry::recording()));
    assert!(!telemetry::install(Telemetry::recording()));
    assert!(!telemetry::install(Telemetry::disabled()));
    let tel = telemetry::active().expect("handle just installed");

    // 3. Engine equivalence: tracing only adds clock reads, so the
    //    traced run must reproduce the baseline bit for bit.
    let traced = decompose_fig5();
    assert_eq!(
        traced.total_cost.value(),
        baseline.total_cost.value(),
        "tracing changed the proven optimum"
    );
    assert_eq!(
        traced.all_edges(&CommLibrary::standard()),
        baseline.all_edges(&CommLibrary::standard()),
        "tracing changed the edge partition"
    );

    // 4. The stream reconstructs the run: one run span with its phase
    //    breakdown, counters consistent with one traced decomposition.
    assert_eq!(tel.counter_value("decompose.runs"), 1);
    let first = tel.drain();
    let run_spans: Vec<&Event> = first
        .iter()
        .filter(|e| e.kind == EventKind::Span && e.name == "decompose.run")
        .collect();
    assert_eq!(run_spans.len(), 1, "one run span per decomposition");
    let run = run_spans[0];
    assert!(run.dur_us.is_some(), "spans carry a duration");
    let field = |name: &str| {
        run.fields
            .iter()
            .find(|(k, _)| k == name)
            .unwrap_or_else(|| panic!("decompose.run is missing field {name:?}"))
            .1
            .clone()
    };
    assert_eq!(
        field("vertices"),
        telemetry::Field::U64(pajek::fig5_benchmark().core_count() as u64)
    );
    assert_eq!(field("timed_out"), telemetry::Field::Bool(false));
    for phase in ["match_enum", "bound", "frontier", "leaf"] {
        let name = format!("decompose.phase.{phase}");
        assert_eq!(
            first.iter().filter(|e| e.name == name).count(),
            1,
            "exactly one {name} span per run"
        );
    }
    // Sequence numbers are strictly increasing within a drain.
    for pair in first.windows(2) {
        assert!(pair[0].seq < pair[1].seq, "seq must be strictly increasing");
    }

    // 5. Determinism: a second identical run drains an event stream
    //    whose deterministic projection matches the first run's exactly.
    let again = decompose_fig5();
    assert_eq!(again.total_cost.value(), baseline.total_cost.value());
    let second = tel.drain();
    assert_eq!(
        deterministic_view(&first),
        deterministic_view(&second),
        "identical runs must trace identically (timestamps aside)"
    );
    assert_eq!(tel.counter_value("decompose.runs"), 2);

    // 6. Wire format: write → read → write is byte-identical, and the
    //    full trace document (with counter/gauge/hist snapshots) renders
    //    a summary that names the decomposer span.
    let trace = tel.take_trace();
    assert!(!trace.is_empty(), "snapshots alone make a non-empty trace");
    let jsonl = telemetry::write_jsonl(&trace);
    let parsed = telemetry::read_jsonl(&jsonl).expect("own output re-parses");
    assert_eq!(parsed, trace, "decoded events match the originals");
    assert_eq!(
        telemetry::write_jsonl(&parsed),
        jsonl,
        "round trip must be byte-identical"
    );
    let summary = telemetry::summarize(&trace);
    assert_eq!(summary.dropped, 0);
    assert!(summary.render().contains("decompose.runs"));
}

#[test]
fn a_disabled_handle_records_nothing_and_allocates_nothing() {
    let tel = Telemetry::disabled();
    assert!(!tel.is_enabled());
    tel.add("x", 3);
    tel.gauge_set("g", 7);
    tel.record("h", 1);
    tel.event("e", &[("k", 1u64.into())]);
    drop(tel.span("s").field("k", true));
    assert_eq!(tel.counter_value("x"), 0);
    assert_eq!(tel.dropped(), 0);
    assert!(tel.take_trace().is_empty());
}
