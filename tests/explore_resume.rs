//! The incremental-campaign guarantees, end to end: report JSON
//! round-trips exactly, and the three ways of covering a grid —
//! single-shot, kill-half-then-resume, shard-and-merge — fold to
//! identical Pareto fronts (the property `explore --smoke` asserts in CI,
//! here locked in as `cargo test` coverage).

use noc_explore::prelude::*;
use noc_explore::{partition, CampaignReport, JsonLinesSink, ObjectiveKind};

fn smoke_campaign() -> Campaign {
    Campaign::new(ScenarioGrid::smoke())
}

#[test]
fn report_json_round_trips_identically() {
    let report = smoke_campaign().run();
    let parsed = CampaignReport::from_json(&report.to_json()).expect("parse own output");
    // Every record survives exactly (all smoke points succeed, so the
    // NaN-provenance caveat never applies and PartialEq is meaningful).
    assert_eq!(parsed.points, report.points);
    assert_eq!(parsed.front, report.front);
    assert_eq!(parsed.objective_kinds, report.objective_kinds);
    assert_eq!(parsed.hypervolume, report.hypervolume);
    assert_eq!(parsed.spread, report.spread);
    assert_eq!(parsed.match_cache, report.match_cache);
    assert_eq!(
        (
            parsed.threads,
            parsed.flows_synthesized,
            parsed.synthesis_reused
        ),
        (
            report.threads,
            report.flows_synthesized,
            report.synthesis_reused
        )
    );
    // Fixed point: writing the parsed report reproduces the bytes.
    assert_eq!(parsed.to_json(), report.to_json());
}

#[test]
fn fresh_and_resumed_runs_fold_identical_fronts() {
    let campaign = smoke_campaign();
    let fresh = campaign.run();

    // "Kill" the campaign halfway: run only the first half of the grid,
    // round-trip its report through JSON (as a real resume would), then
    // resume the rest.
    let half = campaign.run_plan(campaign.plan_shard(&ShardManifest::range(0, 2)));
    assert_eq!(half.points.len(), 6);
    let reloaded = CampaignReport::from_json(&half.to_json()).expect("half report parses");
    let resumed = campaign.resume_from(&reloaded).expect("resume");

    assert_eq!(resumed.front, fresh.front);
    assert_eq!(resumed.hypervolume, fresh.hypervolume);
    assert_eq!(resumed.spread, fresh.spread);
    assert_eq!(resumed.points.len(), fresh.points.len());
    assert_eq!(resumed.carried_points, 6);
    // Not just the front: every record is identical.
    for (a, b) in resumed.points.iter().zip(&fresh.points) {
        assert_eq!(a.scenario_id, b.scenario_id);
        assert_eq!(a.objectives, b.objectives, "point {}", a.label);
        assert_eq!(a.on_front, b.on_front, "point {}", a.label);
    }
    // Resuming a complete report runs nothing and changes nothing.
    let noop = campaign.resume_from(&fresh).expect("no-op resume");
    assert_eq!(noop.front, fresh.front);
    assert_eq!((noop.flows_synthesized, noop.carried_points), (0, 12));
}

#[test]
fn sharded_and_merged_fronts_equal_single_shot() {
    let campaign = smoke_campaign();
    let single = campaign.run();
    for mode in [ShardMode::Range, ShardMode::Modulo] {
        for count in [2usize, 3, 5] {
            let shards: Vec<CampaignReport> = partition(count, mode)
                .iter()
                .map(|m| campaign.run_plan(campaign.plan_shard(m)))
                .collect();
            // Disjoint and exhaustive by construction.
            let total: usize = shards.iter().map(|s| s.points.len()).sum();
            assert_eq!(total, single.points.len(), "{mode:?} x{count}");
            let merged = merge_reports(&shards).expect("merge");
            assert_eq!(merged.front, single.front, "{mode:?} x{count}");
            assert_eq!(merged.hypervolume, single.hypervolume);
            for (a, b) in merged.points.iter().zip(&single.points) {
                assert_eq!(a.objectives, b.objectives, "point {}", a.label);
            }
        }
    }
}

#[test]
fn killed_jsonl_stream_resumes_to_the_same_front() {
    let campaign = smoke_campaign();
    let fresh = campaign.run();

    // Stream a full campaign to JSON Lines, then keep only the first 5
    // lines — what a kill mid-run would leave on disk (the sink flushes
    // per point and on drop).
    let mut buf: Vec<u8> = Vec::new();
    {
        let mut sink = JsonLinesSink::new(&mut buf, ObjectiveKind::DEFAULT.to_vec());
        campaign.run_with_sink(&mut sink);
    }
    let text = String::from_utf8(buf).unwrap();
    assert_eq!(text.lines().count(), 12);
    let truncated: String = text.lines().take(5).collect::<Vec<_>>().join("\n");

    let partial = CampaignReport::from_json_lines(&truncated, &ObjectiveKind::DEFAULT)
        .expect("partial stream parses");
    assert_eq!(partial.points.len(), 5);
    let resumed = campaign.resume_from(&partial).expect("resume from stream");
    assert_eq!(resumed.front, fresh.front);
    assert_eq!(resumed.carried_points, 5);
}

#[test]
fn one_campaign_cache_serves_multiple_graph_sizes() {
    // The smoke grid spans 8-vertex (fig5, tgff) and 10-vertex (pajek)
    // applications; each workload synthesizes under two objectives, so
    // the second run per workload hits the campaign-wide cache — at
    // *both* sizes, which the pre-size-tag design could not do.
    let report = smoke_campaign().run();
    let sizes: Vec<usize> = report.match_cache.iter().map(|c| c.vertex_count).collect();
    assert_eq!(sizes, vec![8, 10]);
    for row in &report.match_cache {
        assert!(
            row.hits > 0,
            "no cross-run hits at size {}: {:?}",
            row.vertex_count,
            report.match_cache
        );
    }
}
