//! Cross-crate engine-equivalence properties: the explicit-frontier
//! search must prove the *same optimum* under every expansion order and
//! thread count, and every returned decomposition must be a valid edge
//! partition of the input ACG.

use noc::prelude::*;
use noc::workloads::pajek;
use proptest::prelude::*;

fn grid_cost_model(acg: &Acg) -> CostModel {
    let side = (acg.core_count() as f64).sqrt().ceil() as usize;
    CostModel::new(
        EnergyModel::new(TechnologyProfile::cmos_180nm()),
        Placement::grid(side, side, 2.0, 2.0),
        Objective::Links,
    )
}

fn engine_configs() -> Vec<(String, DecomposerConfig)> {
    // The full matrix: every configured worker count (1 = the sequential
    // engine, >1 = the packet driver) under both expansion orders, plus
    // the hardware-sized pool and a cache-less run.
    let mut configs = Vec::new();
    for threads in [1usize, 2, 4] {
        for order in [SearchOrder::DepthFirst, SearchOrder::BestFirst] {
            configs.push((
                format!("threads {threads}, {order:?}"),
                DecomposerConfig {
                    threads,
                    order,
                    ..DecomposerConfig::default()
                },
            ));
        }
    }
    configs.push((
        "hardware-sized pool".to_string(),
        DecomposerConfig {
            threads: 0,
            ..DecomposerConfig::default()
        },
    ));
    configs.push((
        "parallel best-first, no cache".to_string(),
        DecomposerConfig {
            threads: 4,
            order: SearchOrder::BestFirst,
            use_match_cache: false,
            ..DecomposerConfig::default()
        },
    ));
    configs
}

/// Runs every engine mode on `acg`; asserts identical best costs and a
/// valid partition (covered + remainder edges == the ACG edge set), and
/// returns the common cost.
fn assert_engines_agree(acg: &Acg) -> f64 {
    let library = CommLibrary::standard();
    let mut reference: Option<f64> = None;
    for (label, config) in engine_configs() {
        let outcome = Decomposer::new(acg, &library, grid_cost_model(acg))
            .config(config)
            .run();
        let best = outcome
            .best
            .unwrap_or_else(|| panic!("{label}: no decomposition"));
        assert_eq!(
            best.all_edges(&library),
            acg.graph().edge_vec(),
            "{label}: decomposition is not an edge partition"
        );
        let cost = best.total_cost.value();
        match reference {
            None => reference = Some(cost),
            Some(expected) => {
                assert_eq!(cost, expected, "{label}: cost diverged from sequential DFS")
            }
        }
    }
    reference.expect("at least one engine ran")
}

#[test]
fn engines_agree_on_fig5() {
    let cost = assert_engines_agree(&pajek::fig5_benchmark());
    // The paper's Figure 5 decomposition: 1 MGG4 + 1 G124 + 3 G123 over 4
    // physical links each... under Links the printed optimum is 17.
    assert!(cost.is_finite());
}

#[test]
fn engines_agree_on_automotive() {
    let cost = assert_engines_agree(&noc::workloads::automotive_18());
    assert!(cost.is_finite());
}

fn arb_planted_acg() -> impl Strategy<Value = Acg> {
    (8usize..=14, 0u64..100, 0usize..=2, 0usize..=2).prop_map(|(n, seed, gossips, loops)| {
        pajek::planted(&pajek::PlantedConfig {
            n,
            gossip4: gossips,
            broadcast4: 1,
            broadcast3: 1,
            loops4: loops,
            noise_prob: 0.05,
            volume: 8.0,
            seed,
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Sequential DFS, best-first and parallel search return the same
    /// `total_cost` and a valid edge partition on random Pajek seeds.
    #[test]
    fn engines_agree_on_random_pajek(acg in arb_planted_acg()) {
        let cost = assert_engines_agree(&acg);
        prop_assert!(cost.is_finite());
        // Never worse than the trivial all-remainder decomposition.
        prop_assert!(cost <= acg.graph().edge_count() as f64 + 1e-9);
    }
}
