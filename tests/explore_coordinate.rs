//! The coordinated-campaign guarantees, end to end: a fleet with dying,
//! hanging and slow workers still converges to exactly the single-shot
//! front, re-dealing *only* the scenario ids a failed worker left
//! unfinished — and the persistent match cache warms every restart.
//!
//! The transports here are scripted fault models around the library's
//! [`ThreadTransport`]/[`run_worker`] building blocks: a worker that
//! streams a few points and exits without a report (a crash), and one
//! that streams a few points and hangs (a straggler caught by the
//! deadline). CI additionally exercises the real `ProcessTransport` path
//! with an actual `kill()` via `explore coordinate --chaos-kill-first`.

use std::collections::BTreeSet;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use noc::prelude::*;
use noc_explore::coordinate::{
    coordinate, run_worker, CoordinatorConfig, ThreadTransport, WorkerAssignment, WorkerHandle,
    WorkerStatus, WorkerTransport,
};
use noc_explore::prelude::*;
use noc_explore::CampaignReport;

/// A 4-point grid (2 workloads × 2 synthesis objectives) — big enough to
/// split across workers, small enough to run many times in a test.
fn small_campaign() -> Campaign {
    Campaign::new(
        ScenarioGrid::new()
            .workloads([
                WorkloadSpec::fixed(WorkloadFamily::Fig5),
                WorkloadSpec::new(WorkloadFamily::Tgff, 8, 8),
            ])
            .synthesis_objectives([Objective::Links, Objective::Energy]),
    )
}

/// A unique, self-cleaning work directory per test.
struct WorkDir(PathBuf);

impl WorkDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("noc_coord_{tag}_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        WorkDir(dir)
    }

    fn path(&self) -> &PathBuf {
        &self.0
    }
}

impl Drop for WorkDir {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

/// Wraps a transport, recording every assignment it deals — the direct
/// way to assert *which ids* each wave re-dealt.
struct Recording<T> {
    inner: T,
    assignments: Arc<Mutex<Vec<WorkerAssignment>>>,
}

impl<T> Recording<T> {
    fn new(inner: T) -> Self {
        Recording {
            inner,
            assignments: Arc::new(Mutex::new(Vec::new())),
        }
    }

    fn dealt(&self) -> Vec<WorkerAssignment> {
        self.assignments.lock().unwrap().clone()
    }
}

impl<T: WorkerTransport> WorkerTransport for Recording<T> {
    fn launch(&mut self, assignment: &WorkerAssignment) -> Result<Box<dyn WorkerHandle>, String> {
        self.assignments.lock().unwrap().push(assignment.clone());
        self.inner.launch(assignment)
    }
}

/// Fault model: the first launched worker evaluates only its first
/// `partial` ids, streams them, and exits **without** a report — the
/// artifact shape a crashed machine leaves behind. Everyone else runs
/// [`run_worker`] normally.
struct CrashFirst {
    campaign: Campaign,
    partial: usize,
    launches: usize,
    hang_instead: bool,
}

struct DoneHandle;
impl WorkerHandle for DoneHandle {
    fn status(&mut self) -> WorkerStatus {
        WorkerStatus::Exited
    }
    fn kill(&mut self) {}
}

/// Reports `Exited` once the worker thread finished — the exact behavior
/// of [`ThreadTransport`]'s handles. With `hang` set the handle claims to
/// be running forever (a wedged machine): only a deadline kill ends it.
struct Join {
    thread: std::thread::JoinHandle<()>,
    hang: bool,
    killed: bool,
}
impl WorkerHandle for Join {
    fn status(&mut self) -> WorkerStatus {
        if self.killed || (!self.hang && self.thread.is_finished()) {
            WorkerStatus::Exited
        } else {
            WorkerStatus::Running
        }
    }
    fn kill(&mut self) {
        self.killed = true;
    }
}

impl WorkerTransport for CrashFirst {
    fn launch(&mut self, assignment: &WorkerAssignment) -> Result<Box<dyn WorkerHandle>, String> {
        let first = self.launches == 0;
        self.launches += 1;
        if !first {
            let campaign = self.campaign.clone();
            let assignment = assignment.clone();
            let thread = std::thread::spawn(move || {
                run_worker(&campaign, &assignment).expect("healthy worker");
            });
            return Ok(Box::new(Join {
                thread,
                hang: false,
                killed: false,
            }));
        }
        // The crashing/hanging worker: stream `partial` points, no report.
        let campaign = self.campaign.clone();
        let ids: BTreeSet<usize> = assignment.ids.iter().take(self.partial).copied().collect();
        let stream_path = assignment.stream_path.clone();
        let thread = std::thread::spawn(move || {
            let plan = campaign.plan().restrict(&ids);
            let file = std::fs::File::create(&stream_path).expect("stream file");
            let mut sink = JsonLinesSink::new(file, ObjectiveKind::DEFAULT.to_vec());
            campaign.run_plan_with_sink(plan, &mut sink);
        });
        Ok(Box::new(Join {
            thread,
            hang: self.hang_instead,
            killed: false,
        }))
    }
}

#[test]
fn thread_fleet_converges_to_the_single_shot_front() {
    let campaign = Campaign::new(ScenarioGrid::smoke());
    let single = campaign.run();
    let work = WorkDir::new("fleet");
    let config = CoordinatorConfig::new(3).work_dir(work.path());
    let mut transport = ThreadTransport::new(campaign.clone());
    let report = coordinate(&campaign, &config, &mut transport).expect("coordination");

    assert_eq!(report.front, single.front);
    assert_eq!(report.hypervolume, single.hypervolume);
    assert_eq!(report.points.len(), single.points.len());
    for (a, b) in report.points.iter().zip(&single.points) {
        assert_eq!(a.objectives, b.objectives, "point {}", a.label);
    }
    let provenance = report.coordinator.as_ref().expect("coordinator record");
    assert_eq!(provenance.workers, 3);
    assert_eq!(provenance.waves.len(), 1);
    assert_eq!(provenance.waves[0].completed, 3);
    assert_eq!((provenance.killed(), provenance.redealt()), (0, 0));

    // The merged report is a first-class interchange artifact: the
    // coordinator provenance survives the JSON round trip byte-for-byte.
    let parsed = CampaignReport::from_json(&report.to_json()).expect("parse");
    assert_eq!(parsed.coordinator, report.coordinator);
    assert_eq!(parsed.to_json(), report.to_json());
}

#[test]
fn crashed_worker_redeal_covers_exactly_the_unfinished_ids() {
    let campaign = small_campaign();
    let single = campaign.run();
    let work = WorkDir::new("crash");
    let config = CoordinatorConfig::new(2).work_dir(work.path());
    let mut transport = Recording::new(CrashFirst {
        campaign: campaign.clone(),
        partial: 1,
        launches: 0,
        hang_instead: false,
    });
    let report = coordinate(&campaign, &config, &mut transport).expect("coordination");

    // Wave 0 dealt ids 0,1 to the crasher (which finished only id 0) and
    // 2,3 to the healthy worker; wave 1 must re-deal exactly {1}.
    let dealt = transport.dealt();
    assert_eq!(dealt.len(), 3, "one re-dealt worker expected");
    assert_eq!(dealt[0].ids, vec![0, 1]);
    assert_eq!(dealt[1].ids, vec![2, 3]);
    assert_eq!(dealt[2].ids, vec![1], "only the unfinished id is re-dealt");
    assert_eq!(dealt[2].wave, 1);

    let provenance = report.coordinator.as_ref().unwrap();
    assert_eq!(provenance.waves.len(), 2);
    assert_eq!(provenance.waves[0].completed, 1);
    assert_eq!(provenance.waves[0].salvaged_points, 1);
    assert_eq!(provenance.waves[0].redealt, 1);
    assert_eq!(provenance.waves[1].redealt, 0);

    // And the moral of it all: the front never noticed the crash.
    assert_eq!(report.front, single.front);
    assert_eq!(report.points.len(), single.points.len());
    for (a, b) in report.points.iter().zip(&single.points) {
        assert_eq!(a.objectives, b.objectives, "point {}", a.label);
    }
}

#[test]
fn hung_straggler_is_killed_at_the_deadline_and_redealt() {
    let campaign = small_campaign();
    let single = campaign.run();
    let work = WorkDir::new("straggler");
    let config = CoordinatorConfig::new(2)
        .work_dir(work.path())
        .deadline(Duration::from_millis(2500));
    let mut transport = Recording::new(CrashFirst {
        campaign: campaign.clone(),
        partial: 1,
        launches: 0,
        hang_instead: true,
    });
    let report = coordinate(&campaign, &config, &mut transport).expect("coordination");

    let provenance = report.coordinator.as_ref().unwrap();
    assert_eq!(provenance.killed(), 1, "the straggler must be killed");
    assert!(provenance.waves.len() >= 2);
    assert_eq!(provenance.waves[0].killed, 1);
    // Its streamed point was salvaged, the rest re-dealt.
    assert_eq!(provenance.waves[0].salvaged_points, 1);
    assert_eq!(transport.dealt()[2].ids, vec![1]);
    assert_eq!(report.front, single.front);
}

#[test]
fn stale_artifacts_in_a_reused_work_dir_are_not_trusted() {
    let campaign = small_campaign();
    let work = WorkDir::new("stale");
    let config = CoordinatorConfig::new(2).work_dir(work.path());

    // Run 1: a healthy fleet leaves wave0_worker{0,1}.json behind.
    coordinate(
        &campaign,
        &config,
        &mut ThreadTransport::new(campaign.clone()),
    )
    .expect("first coordination");
    assert!(work.path().join("wave0_worker0.json").exists());

    // Run 2 in the SAME work dir: worker 0 crashes after one point.
    // Artifact names are deterministic, so without pre-launch clearing
    // the first run's stale wave0_worker0.json would be credited to the
    // crashed worker and its unfinished ids never re-dealt.
    let mut transport = Recording::new(CrashFirst {
        campaign: campaign.clone(),
        partial: 1,
        launches: 0,
        hang_instead: false,
    });
    let report = coordinate(&campaign, &config, &mut transport).expect("second coordination");
    let provenance = report.coordinator.as_ref().unwrap();
    assert_eq!(
        provenance.waves.len(),
        2,
        "the crash must force a re-deal despite the stale report"
    );
    assert_eq!(transport.dealt()[2].ids, vec![1]);
    assert_eq!(report.front, campaign.run().front);
}

#[test]
fn unreliable_fleet_eventually_gives_up() {
    // Every worker crashes before streaming anything: no wave can make
    // progress, and the coordinator must error out instead of spinning.
    struct AlwaysCrash;
    impl WorkerTransport for AlwaysCrash {
        fn launch(&mut self, _: &WorkerAssignment) -> Result<Box<dyn WorkerHandle>, String> {
            Ok(Box::new(DoneHandle))
        }
    }
    let campaign = small_campaign();
    let work = WorkDir::new("giveup");
    let config = CoordinatorConfig::new(2).work_dir(work.path());
    let err = coordinate(&campaign, &config, &mut AlwaysCrash).unwrap_err();
    assert!(err.contains("no progress"), "{err}");
}

#[test]
fn persistent_cache_warms_the_next_coordination() {
    let campaign = small_campaign();
    let work = WorkDir::new("cache");
    std::fs::create_dir_all(work.path()).unwrap();
    let cache_path = work.path().join("match_cache.json");

    // Run 1: cold start, cache persisted.
    let config = CoordinatorConfig::new(2)
        .work_dir(work.path().join("run1"))
        .cache_path(&cache_path);
    let cold = coordinate(
        &campaign,
        &config,
        &mut ThreadTransport::new(campaign.clone()),
    )
    .expect("cold coordination");
    let cold_warm_hits: u64 = cold.match_cache.iter().map(|c| c.warm_hits).sum();
    assert_eq!(cold_warm_hits, 0, "nothing to be warm about yet");
    let warm_record = cold.warm_cache.as_ref().expect("warm-cache record");
    assert_eq!(warm_record.loaded_graphs, 0);
    assert!(warm_record.saved_graphs > 0);
    assert!(cache_path.exists());

    // Run 2: a fresh "fleet" warm-starts from the persisted file and
    // reports warm hits from its very first decompositions.
    let config = CoordinatorConfig::new(2)
        .work_dir(work.path().join("run2"))
        .cache_path(&cache_path);
    let warm = coordinate(
        &campaign,
        &config,
        &mut ThreadTransport::new(campaign.clone()),
    )
    .expect("warm coordination");
    let record = warm.warm_cache.as_ref().expect("warm-cache record");
    assert!(record.loaded_graphs > 0, "{record:?}");
    assert!(record.degraded.is_none());
    let warm_hits: u64 = warm.match_cache.iter().map(|c| c.warm_hits).sum();
    assert!(warm_hits > 0, "warmed fleet reported no warm hits");
    assert_eq!(warm.front, cold.front, "cache must never change results");
}

#[test]
fn corrupt_cache_file_degrades_to_cold_start_not_failure() {
    let campaign = small_campaign();
    let work = WorkDir::new("corrupt");
    std::fs::create_dir_all(work.path()).unwrap();
    let cache_path = work.path().join("match_cache.json");
    std::fs::write(&cache_path, "{\"cache\": \"noc_match_cache\", \"schema").unwrap();

    let config = CoordinatorConfig::new(2)
        .work_dir(work.path().join("run"))
        .cache_path(&cache_path);
    let report = coordinate(
        &campaign,
        &config,
        &mut ThreadTransport::new(campaign.clone()),
    )
    .expect("a bad cache file must not fail the run");
    let record = report.warm_cache.as_ref().expect("warm-cache record");
    assert_eq!(record.loaded_graphs, 0);
    assert!(record.degraded.is_some(), "degradation must be reported");
    assert_eq!(report.front, campaign.run().front);
    // The run overwrote the corrupt file with a valid cache.
    assert!(SharedMatchCache::load_from(&cache_path, 1 << 16).is_ok());
}
