//! End-to-end pipeline integration tests spanning every crate:
//! ACG -> floorplan -> decomposition -> architecture -> simulation.

use noc::prelude::*;
use noc::sim::traffic;
use noc::workloads::{automotive_18, pajek, tgff, TgffConfig};

/// Runs the whole flow and simulates one ACG iteration on the result.
fn flow_and_simulate(acg: Acg) -> (noc::FlowResult, noc::sim::SimReport) {
    let result = SynthesisFlow::new(acg.clone())
        .seed(5)
        .run()
        .expect("flow succeeds");
    let model = result.noc_model();
    let energy = EnergyModel::new(TechnologyProfile::cmos_180nm());
    let report = Simulator::new(&model, SimConfig::default(), energy)
        .run(traffic::acg_iteration(&acg))
        .expect("all ACG pairs are routable on the synthesized network");
    (result, report)
}

#[test]
fn gossip_application_end_to_end() {
    let acg = Acg::from_graph_uniform(DiGraph::complete(4), EdgeDemand::new(64.0, 1.0e6));
    let (result, report) = flow_and_simulate(acg);
    assert_eq!(result.decomposition.matchings.len(), 1);
    assert_eq!(report.packets_delivered, 12);
    assert_eq!(report.flits_injected, report.flits_ejected);
}

#[test]
fn automotive_benchmark_end_to_end() {
    let acg = automotive_18();
    let (result, report) = flow_and_simulate(acg.clone());
    // Every ACG edge is covered exactly once across matches + remainder.
    assert_eq!(
        result.decomposition.all_edges(&CommLibrary::standard()),
        acg.graph().edge_vec()
    );
    assert_eq!(report.packets_delivered, acg.graph().edge_count());
    // The ECU fan-out must have matched at least one broadcast primitive.
    assert!(result
        .decomposition
        .matchings
        .iter()
        .any(|m| m.label.starts_with('G')));
}

#[test]
fn planted_benchmarks_end_to_end() {
    for seed in 0..5 {
        let acg = pajek::planted(&pajek::PlantedConfig {
            n: 14,
            seed,
            ..pajek::PlantedConfig::default()
        });
        if acg.graph().edge_count() == 0 {
            continue;
        }
        let (result, report) = flow_and_simulate(acg.clone());
        assert!(result.decomposition.total_cost.value() > 0.0, "seed {seed}");
        assert_eq!(report.packets_delivered, acg.graph().edge_count());
    }
}

#[test]
fn tgff_suite_end_to_end() {
    for tasks in [6usize, 10, 14] {
        let acg = tgff(&TgffConfig {
            tasks,
            seed: 2 * tasks as u64,
            ..TgffConfig::default()
        });
        let (result, report) = flow_and_simulate(acg.clone());
        assert_eq!(
            result.decomposition.all_edges(&CommLibrary::standard()),
            acg.graph().edge_vec(),
            "tasks = {tasks}"
        );
        assert_eq!(report.packets_delivered, acg.graph().edge_count());
    }
}

#[test]
fn extended_library_reduces_or_matches_cost() {
    // A graph with an 8-gossip: the extended library (with MGG8) must do at
    // least as well as the standard one under the Links objective.
    let acg = Acg::from_graph_uniform(DiGraph::complete(8), EdgeDemand::from_volume(8.0));
    let std_cost = SynthesisFlow::new(acg.clone())
        .placement(Placement::grid(3, 3, 2.0, 2.0))
        .run()
        .unwrap()
        .decomposition
        .total_cost
        .value();
    let ext_cost = SynthesisFlow::new(acg)
        .placement(Placement::grid(3, 3, 2.0, 2.0))
        .library(CommLibrary::extended())
        .run()
        .unwrap()
        .decomposition
        .total_cost
        .value();
    assert!(
        ext_cost <= std_cost,
        "extended {ext_cost} should beat standard {std_cost}"
    );
}

#[test]
fn custom_architecture_simulates_arbitrary_traffic_after_fill() {
    // After fill_all_pairs, uniform random traffic runs on the custom
    // topology (when it is strongly connected, as gossip networks are).
    let acg = Acg::from_graph_uniform(DiGraph::complete(4), EdgeDemand::from_volume(8.0));
    let result = SynthesisFlow::new(acg).run().unwrap();
    let model = result.noc_model();
    let events = traffic::uniform_random(4, 100, 64, 3);
    let energy = EnergyModel::new(TechnologyProfile::cmos_180nm());
    let report = Simulator::new(&model, SimConfig::default(), energy)
        .run(events)
        .unwrap();
    assert_eq!(report.packets_delivered, 100);
}

#[test]
fn bandwidth_constraints_propagate_through_flow() {
    // Demands that oversubscribe a tiny-link technology must be rejected
    // when constraints are enforced.
    let tech = TechnologyProfile::builder("tiny")
        .link_bandwidth_bps(1.0e3)
        .build();
    let acg = Acg::from_graph_uniform(DiGraph::complete(4), EdgeDemand::new(64.0, 1.0e6));
    let err = SynthesisFlow::new(acg)
        .technology(tech)
        .enforce_constraints()
        .run()
        .unwrap_err();
    assert!(matches!(err, noc::FlowError::NoLegalDecomposition { .. }));
}

#[test]
fn energy_and_links_objectives_both_complete() {
    let acg = pajek::fig5_benchmark();
    for objective in [Objective::Links, Objective::Energy] {
        let result = SynthesisFlow::new(acg.clone())
            .objective(objective)
            .run()
            .unwrap();
        assert!(result.decomposition.remainder.is_edgeless());
    }
}

#[test]
fn phased_aes_traffic_runs_on_both_architectures() {
    let comparison = AesPrototype::new().run().unwrap();
    // 552 messages per block on both.
    assert_eq!(comparison.mesh.packets_delivered, 552);
    assert_eq!(comparison.custom.packets_delivered, 552);
    // Identical compute cycles (same engine), different comm cycles.
    assert_eq!(
        comparison.mesh.compute_cycles,
        comparison.custom.compute_cycles
    );
    assert_ne!(comparison.mesh.comm_cycles, comparison.custom.comm_cycles);
}

#[test]
fn multimedia_benchmark_end_to_end() {
    // The VOPD-style decoder: pipeline-dominated traffic with a control
    // broadcast; the flow must produce a mostly point-to-point architecture
    // with single-hop routes for the heavy stream edges.
    let acg = noc::workloads::multimedia_16();
    let (result, report) = flow_and_simulate(acg.clone());
    assert_eq!(report.packets_delivered, acg.graph().edge_count());
    let stats = result.architecture.stats();
    assert!(stats.avg_route_hops <= 1.5, "stream edges should be direct");
    // The heavy vop-mem -> vop-rec edge gets a dedicated link.
    let route = result
        .architecture
        .route(NodeId(9), NodeId(7))
        .expect("reference-frame route exists");
    assert_eq!(route.len(), 2, "heavy stream edge should be one hop");
}
