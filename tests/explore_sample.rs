//! Determinism and quality properties of the adaptive budgeted sampler
//! (`Campaign::run_sampled`): a given (grid, budget, seed, policy) always
//! evaluates the same scenario sequence; sampled fronts stay inside the
//! exhaustive front; the hypervolume trajectory never regresses; and
//! sampled reports remain first-class interchange artifacts (round-trip
//! through JSON, resume to the full grid).

use noc_explore::{Campaign, CampaignReport, SamplerConfig, SamplerPolicy, ScenarioGrid};

fn smoke() -> Campaign {
    Campaign::new(ScenarioGrid::smoke())
}

const POLICIES: [SamplerPolicy; 2] = [SamplerPolicy::DEFAULT_BANDIT, SamplerPolicy::Halving];

#[test]
fn same_grid_budget_seed_policy_is_identical() {
    for policy in POLICIES {
        for seed in [1u64, 7, 42] {
            let config = SamplerConfig::new(6).policy(policy).seed(seed);
            let a = smoke().run_sampled(&config);
            let b = smoke().run_sampled(&config);
            assert_eq!(a.front, b.front, "{} seed {seed}", policy.label());
            assert_eq!(a.hypervolume, b.hypervolume);
            // The scenario sequence itself is identical: same points, same
            // measurements, same per-round arm pulls and trajectory.
            assert_eq!(a.points.len(), b.points.len());
            for (x, y) in a.points.iter().zip(&b.points) {
                assert_eq!(x.scenario_id, y.scenario_id);
                assert_eq!(x.objectives, y.objectives, "point {}", x.label);
            }
            let (sa, sb) = (a.sampler.unwrap(), b.sampler.unwrap());
            assert_eq!(sa.rounds.len(), sb.rounds.len());
            for (ra, rb) in sa.rounds.iter().zip(&sb.rounds) {
                assert_eq!(ra.arms, rb.arms);
                assert_eq!(ra.flows, rb.flows);
                assert_eq!(ra.hypervolume, rb.hypervolume);
            }
        }
    }
}

#[test]
fn thread_count_never_changes_a_sampled_report() {
    let config = SamplerConfig::new(6);
    let sequential = smoke().run_sampled(&config);
    let parallel = smoke().threads(4).run_sampled(&config);
    assert_eq!(sequential.front, parallel.front);
    assert_eq!(sequential.hypervolume, parallel.hypervolume);
    for (a, b) in sequential.points.iter().zip(&parallel.points) {
        assert_eq!(a.objectives, b.objectives, "point {}", a.label);
    }
    assert_eq!(
        sequential.sampler.as_ref().unwrap().rounds.len(),
        parallel.sampler.as_ref().unwrap().rounds.len()
    );
}

#[test]
fn different_seeds_can_choose_different_scenarios() {
    // Not a hard property of every pair of seeds — but across several the
    // RNG must actually steer scenario choice, or the seed is decorative.
    let sequences: Vec<Vec<usize>> = [1u64, 2, 3, 4]
        .iter()
        .map(|&seed| {
            smoke()
                .run_sampled(&SamplerConfig::new(4).seed(seed))
                .points
                .iter()
                .map(|p| p.scenario_id)
                .collect()
        })
        .collect();
    assert!(
        sequences.windows(2).any(|w| w[0] != w[1]),
        "four seeds chose identical scenario sets: {sequences:?}"
    );
}

#[test]
fn sampled_front_members_stay_on_the_full_grid_front() {
    // A sampled front member could in principle be dominated by an
    // unevaluated point; at this budget the planners keep every workload
    // region covered, so the sampled front is a subset of the exhaustive
    // one (pinned seeds — verified stable for 1..=3 on the smoke grid).
    let full = smoke().run();
    for policy in POLICIES {
        for seed in [1u64, 2, 3] {
            let sampled = smoke().run_sampled(&SamplerConfig::new(8).policy(policy).seed(seed));
            for id in &sampled.front {
                assert!(
                    full.front.contains(id),
                    "{} seed {seed}: sampled front member {id} is not on the full front {:?}",
                    policy.label(),
                    full.front
                );
            }
            // And it found ≥ 90% of the exhaustive hypervolume with
            // fewer flows — the CLI/CI acceptance bar.
            assert!(sampled.hypervolume >= 0.9 * full.hypervolume);
            assert!(sampled.points.len() < full.points.len());
        }
    }
}

#[test]
fn hypervolume_trajectory_is_monotone_nondecreasing() {
    for policy in POLICIES {
        for seed in [1u64, 5, 9] {
            let report = smoke().run_sampled(&SamplerConfig::new(10).policy(policy).seed(seed));
            let trajectory: Vec<f64> = report
                .sampler
                .as_ref()
                .unwrap()
                .rounds
                .iter()
                .map(|r| r.hypervolume)
                .collect();
            assert!(!trajectory.is_empty());
            assert!(
                trajectory.windows(2).all(|w| w[1] >= w[0]),
                "{} seed {seed}: trajectory regressed {trajectory:?}",
                policy.label()
            );
            // The final report carries the last round's hypervolume.
            assert_eq!(report.hypervolume, *trajectory.last().unwrap());
        }
    }
}

#[test]
fn sampled_reports_round_trip_and_resume_to_the_full_front() {
    let campaign = smoke();
    let sampled = campaign.run_sampled(&SamplerConfig::new(8));
    // Interchange: the sampled report (schema v2, sampler provenance)
    // survives to_json → from_json byte-identically.
    let reloaded = CampaignReport::from_json(&sampled.to_json()).unwrap();
    assert_eq!(reloaded.sampler, sampled.sampler);
    assert_eq!(reloaded.to_json(), sampled.to_json());
    // Resume: the remaining grid points complete it to the exhaustive
    // front, carrying every sampled record.
    let resumed = campaign.resume_from(&reloaded).unwrap();
    let full = campaign.run();
    assert_eq!(resumed.front, full.front);
    assert_eq!(resumed.carried_points, sampled.points.len());
    assert_eq!(resumed.points.len(), full.points.len());
}

#[test]
fn budget_is_an_upper_bound_and_rounds_partition_the_spend() {
    for policy in POLICIES {
        for budget in [1usize, 3, 7, 12, 30] {
            let report = smoke().run_sampled(&SamplerConfig::new(budget).policy(policy));
            let s = report.sampler.as_ref().unwrap();
            assert!(s.flows_spent <= budget, "{}", policy.label());
            assert!(s.flows_spent <= s.grid_len);
            assert_eq!(s.flows_spent, report.points.len());
            assert_eq!(
                s.rounds.iter().map(|r| r.flows).sum::<usize>(),
                s.flows_spent
            );
            assert_eq!(
                s.rounds.iter().map(|r| r.arms.len()).sum::<usize>(),
                s.flows_spent,
                "one arm pull per evaluated flow"
            );
        }
    }
}
