//! Paper-shape assertions: every table and figure of the evaluation
//! section must reproduce in *shape* — who wins, by roughly what factor,
//! and the exact decomposition structures the paper prints.

use std::time::Instant;

use noc::prelude::*;
use noc::workloads::{automotive_18, pajek, tgff, TgffConfig};

fn grid_flow(acg: Acg) -> noc::FlowResult {
    let side = (acg.core_count() as f64).sqrt().ceil() as usize;
    SynthesisFlow::new(acg)
        .placement(Placement::grid(side, side, 2.0, 2.0))
        .run()
        .unwrap()
}

/// Section 5.2: the AES ACG decomposition printed by the paper —
/// four MGG4 column gossips, two L4 row loops, the shift-by-2 row as the
/// remainder, total COST 28.
#[test]
fn aes_decomposition_matches_paper() {
    let result = grid_flow(noc::aes::aes_acg(0.0));
    let d = &result.decomposition;
    assert_eq!(d.total_cost.value(), 28.0, "paper prints COST: 28");

    let labels: Vec<&str> = d.matchings.iter().map(|m| m.label.as_str()).collect();
    assert_eq!(labels, vec!["MGG4", "MGG4", "MGG4", "MGG4", "L4", "L4"]);

    // The four gossips cover exactly the four columns, first column first
    // (the paper's mapping: "(1 1), (2 5), (3 9), (4 13)" in 1-based IDs).
    for (c, matching) in d.matchings[..4].iter().enumerate() {
        let mut cores: Vec<usize> = matching
            .mapping
            .images()
            .iter()
            .map(|v| v.index())
            .collect();
        cores.sort_unstable();
        assert_eq!(cores, vec![c, c + 4, c + 8, c + 12], "column {c}");
    }
    // The loops cover rows 1 and 3 (0-based): nodes 4-7 and 12-15.
    let mut loop_rows: Vec<Vec<usize>> = d.matchings[4..]
        .iter()
        .map(|m| {
            let mut v: Vec<usize> = m.mapping.images().iter().map(|v| v.index()).collect();
            v.sort_unstable();
            v
        })
        .collect();
    loop_rows.sort();
    assert_eq!(loop_rows, vec![vec![4, 5, 6, 7], vec![12, 13, 14, 15]]);

    // The remainder is the shift-by-2 row: 9->11, 10->12, 11->9, 12->10 in
    // the paper's 1-based labels = 8->10, 9->11, 10->8, 11->9 here.
    let rem: Vec<(usize, usize)> = d
        .remainder
        .edges()
        .map(|e| (e.src.index(), e.dst.index()))
        .collect();
    assert_eq!(rem, vec![(8, 10), (9, 11), (10, 8), (11, 9)]);
}

/// Figure 5: the 8-node random benchmark decomposes completely — one MGG4,
/// three G123, one G124, no remainder — with the exact mappings printed in
/// the paper.
#[test]
fn fig5_planted_decomposition() {
    let result = grid_flow(pajek::fig5_benchmark());
    let d = &result.decomposition;
    assert!(d.remainder.is_edgeless(), "paper: no remaining graph");
    let mut labels: Vec<&str> = d.matchings.iter().map(|m| m.label.as_str()).collect();
    labels.sort_unstable();
    assert_eq!(labels, vec!["G123", "G123", "G123", "G124", "MGG4"]);

    // Exact mappings from the paper's output (1-based there, 0-based here).
    let report = d.paper_report();
    assert!(report.contains("1: MGG4,\tMapping: (1 1), (2 2), (3 5), (4 6)"));
    assert!(report.contains("2: G124,\tMapping: (1 8), (2 1), (3 3), (4 6), (5 7)"));
    assert!(report.contains("3: G123,\tMapping: (1 3), (2 2), (3 5), (4 6)"));
    assert!(report.contains("3: G123,\tMapping: (1 7), (2 3), (3 5), (4 6)"));
    assert!(report.contains("3: G123,\tMapping: (1 4), (2 5), (3 6), (4 7)"));
}

/// Figure 4a: TGFF graphs up to 18 nodes decompose within the paper's
/// runtime envelope (0.3 s for the 18-node automotive benchmark, measured
/// in Matlab — our Rust implementation must be far inside it).
#[test]
fn fig4a_tgff_runtime_envelope() {
    for tasks in [5usize, 10, 15, 18] {
        let acg = tgff(&TgffConfig {
            tasks,
            seed: tasks as u64,
            ..TgffConfig::default()
        });
        let t0 = Instant::now();
        let _ = grid_flow(acg);
        let elapsed = t0.elapsed();
        assert!(
            elapsed.as_millis() < 300,
            "{tasks}-node TGFF graph took {elapsed:?} (paper envelope 0.3 s)"
        );
    }
    let t0 = Instant::now();
    let _ = grid_flow(automotive_18());
    assert!(
        t0.elapsed().as_millis() < 300,
        "automotive benchmark too slow"
    );
}

/// Figure 4b: Pajek graphs up to 40 nodes within the paper's 3-minute
/// envelope, and runtime grows with node count.
#[test]
fn fig4b_pajek_runtime_envelope() {
    let mut times = Vec::new();
    for n in [10usize, 25, 40] {
        let acg = pajek::planted(&pajek::PlantedConfig {
            n,
            gossip4: n / 8,
            broadcast4: n / 10,
            broadcast3: n / 8,
            loops4: n / 10,
            noise_prob: 0.01,
            volume: 8.0,
            seed: 7,
        });
        let t0 = Instant::now();
        let _ = grid_flow(acg);
        let elapsed = t0.elapsed();
        assert!(
            elapsed.as_secs() < 180,
            "{n}-node Pajek graph took {elapsed:?} (paper envelope 3 min)"
        );
        times.push(elapsed);
    }
    assert!(
        times[2] > times[0],
        "runtime should grow with graph size: {times:?}"
    );
}

/// Section 5.2 prototype comparison: the customized architecture beats the
/// standard mesh on every axis the paper reports, within loose factor
/// bands around the published numbers.
#[test]
fn aes_prototype_comparison_shape() {
    let cmp = AesPrototype::new().run().unwrap();

    // Cycles/block: paper 271 -> 199 (-26.6%). Accept a 10-40% reduction.
    let cycle_reduction = 1.0 - cmp.custom.total_cycles as f64 / cmp.mesh.total_cycles as f64;
    assert!(
        (0.10..=0.40).contains(&cycle_reduction),
        "cycles/block reduction {cycle_reduction:.3} out of band (paper 0.266)"
    );

    // Throughput: paper +36%. Accept +15% .. +60%.
    let tput = cmp.throughput_gain();
    assert!(
        (0.15..=0.60).contains(&tput),
        "throughput gain {tput:.3} out of band (paper 0.36)"
    );

    // Latency: paper -17%. Accept any genuine reduction up to 50%.
    let lat = cmp.latency_reduction();
    assert!(
        (0.05..=0.50).contains(&lat),
        "latency reduction {lat:.3} out of band (paper 0.17)"
    );

    // Power: paper -33%. Our dynamic+idle model reproduces the direction
    // with a smaller magnitude; require a genuine reduction.
    let power = cmp.power_reduction();
    assert!(power > 0.05, "power must drop (paper -33%), got {power:.3}");

    // Energy/block: paper -51%; accept -20% .. -60%.
    let energy = cmp.energy_reduction();
    assert!(
        (0.20..=0.60).contains(&energy),
        "energy reduction {energy:.3} out of band (paper 0.51)"
    );

    // Absolute mesh numbers stay in the paper's regime.
    assert!(
        (150..=400).contains(&cmp.mesh.total_cycles),
        "mesh cycles/block {} far from paper's 271",
        cmp.mesh.total_cycles
    );
    let mesh_uj = cmp.mesh.energy_per_run().microjoules();
    assert!(
        (2.5..=10.0).contains(&mesh_uj),
        "mesh energy {mesh_uj:.2} uJ far from paper's 5.1 uJ"
    );
}

/// The decomposition output format itself (the paper prints primitive IDs,
/// labels and 1-based mappings).
#[test]
fn paper_output_format() {
    let result = grid_flow(noc::aes::aes_acg(0.0));
    let report = result.paper_report();
    assert!(report.starts_with("COST: 28\n"));
    assert!(report.contains("1: MGG4,\tMapping: (1 1), (2 5), (3 9), (4 13)"));
    assert!(report.contains("0: Remaining Graph: 9 -> 11, 10 -> 12, 11 -> 9, 12 -> 10"));
}

/// Section 4.3: the hop count of any synthesized architecture is bounded
/// by the largest diameter in the communication library.
#[test]
fn architecture_hops_bounded_by_library_diameter() {
    let lib = CommLibrary::standard();
    let bound = lib.max_diameter_hops();
    for seed in 0..4 {
        let acg = pajek::planted(&pajek::PlantedConfig {
            n: 12,
            seed,
            ..pajek::PlantedConfig::default()
        });
        let result = grid_flow(acg);
        let stats = result.architecture.stats();
        assert!(
            stats.max_route_hops <= bound,
            "seed {seed}: {} hops exceeds library diameter {bound}",
            stats.max_route_hops
        );
    }
}
