//! Pareto-front properties (mirroring `tests/engine_equivalence.rs`):
//! the front is internally non-dominated, everything it excludes is
//! dominated by a member, and it is invariant under permutation of the
//! offer order — the property the campaign engine's determinism (same
//! front at every thread count) ultimately rests on.

use noc_explore::metrics::{schott_spacing, unit_hypervolume};
use noc_explore::pareto::{dominates, pareto_indices, ParetoFront};
use proptest::prelude::*;

/// A population of objective vectors: `count` points in `dims` dimensions,
/// quantized to a small value set so exact ties and exact domination both
/// actually occur (uniform floats would almost never collide).
fn arb_population() -> impl Strategy<Value = Vec<Vec<f64>>> {
    (1usize..=40, 1usize..=4, 0u64..1000).prop_map(|(count, dims, seed)| {
        let mut state = seed
            .wrapping_mul(2862933555777941757)
            .wrapping_add(3037000493);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        (0..count)
            .map(|_| (0..dims).map(|_| (next() % 7) as f64).collect())
            .collect()
    })
}

/// Deterministic Fisher–Yates driven by a seed (the proptest shim has no
/// shuffle strategy).
fn permuted<T: Clone>(items: &[T], seed: u64) -> Vec<T> {
    let mut out: Vec<T> = items.to_vec();
    let mut state = seed | 1;
    for i in (1..out.len()).rev() {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        out.swap(i, (state % (i as u64 + 1)) as usize);
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// No front member dominates another front member.
    #[test]
    fn front_is_internally_non_dominated(vectors in arb_population()) {
        let front = pareto_indices(&vectors);
        for &a in &front {
            for &b in &front {
                prop_assert!(
                    a == b || !dominates(&vectors[a], &vectors[b]),
                    "front member {a} dominates front member {b}"
                );
            }
        }
    }

    /// Every point left off the front is dominated by some front member —
    /// and points on the front are dominated by nobody at all.
    #[test]
    fn excluded_points_are_dominated(vectors in arb_population()) {
        let front = pareto_indices(&vectors);
        prop_assert!(!front.is_empty(), "a nonempty population has a front");
        for (i, v) in vectors.iter().enumerate() {
            let on_front = front.binary_search(&i).is_ok();
            let dominated = vectors.iter().any(|other| dominates(other, v));
            prop_assert_eq!(
                on_front, !dominated,
                "point {} front membership disagrees with dominance", i
            );
        }
    }

    /// The front (as a set of member indices) is invariant under the
    /// order points are offered in.
    #[test]
    fn front_is_permutation_invariant(vectors in arb_population(), seed in 0u64..1000) {
        let reference = pareto_indices(&vectors);
        // Offer the same points in a shuffled order, tracking original ids.
        let indexed: Vec<(usize, Vec<f64>)> =
            vectors.iter().cloned().enumerate().collect();
        let mut front = ParetoFront::new(vectors[0].len());
        for (id, v) in permuted(&indexed, seed) {
            front.offer(id, v);
        }
        prop_assert_eq!(front.indices(), reference);
    }

    /// Offer-time pruning agrees with the one-shot definition: a point
    /// joins the front at offer time iff nothing seen so far dominates
    /// it, and survives iff nothing at all dominates it.
    #[test]
    fn incremental_and_oneshot_agree(vectors in arb_population()) {
        let mut incremental = ParetoFront::new(vectors[0].len());
        for (i, v) in vectors.iter().enumerate() {
            let joined = incremental.offer(i, v.clone());
            let dominated_so_far = vectors[..i].iter().any(|o| dominates(o, v));
            prop_assert_eq!(joined, !dominated_so_far);
        }
        prop_assert_eq!(incremental.indices(), pareto_indices(&vectors));
    }

    /// Hypervolume is monotone (adding points never shrinks it), bounded
    /// by the unit box, invariant under point order, and unchanged by
    /// restriction to the Pareto front (dominated points add no volume).
    #[test]
    fn hypervolume_is_monotone_and_front_determined(
        vectors in arb_population(),
        seed in 0u64..1000,
    ) {
        // Map the quantized population into the open unit box.
        let normalized: Vec<Vec<f64>> = vectors
            .iter()
            .map(|v| v.iter().map(|x| (x + 1.0) / 8.0).collect())
            .collect();
        let hv_all = unit_hypervolume(&normalized);
        prop_assert!((0.0..=1.0).contains(&hv_all), "hv {hv_all}");
        // Monotonicity over prefixes.
        let mut last = 0.0;
        for end in 1..=normalized.len() {
            let hv = unit_hypervolume(&normalized[..end]);
            prop_assert!(hv >= last - 1e-12, "prefix {end}: {hv} < {last}");
            last = hv;
        }
        // Permutation invariance (up to float association error).
        let shuffled = permuted(&normalized, seed);
        prop_assert!((unit_hypervolume(&shuffled) - hv_all).abs() < 1e-9);
        // Only the front matters.
        let front: Vec<Vec<f64>> = pareto_indices(&normalized)
            .into_iter()
            .map(|i| normalized[i].clone())
            .collect();
        prop_assert!((unit_hypervolume(&front) - hv_all).abs() < 1e-12);
    }

    /// Spacing is non-negative, finite, and zero below two points.
    #[test]
    fn spacing_is_well_defined(vectors in arb_population()) {
        let s = schott_spacing(&vectors);
        prop_assert!(s >= 0.0 && s.is_finite());
        prop_assert_eq!(schott_spacing(&vectors[..1]), 0.0);
    }
}
