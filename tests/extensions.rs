//! Integration tests for the beyond-the-paper extensions: library theory
//! audits, load sweeps on synthesized networks, co-optimization and DOT
//! export.

use noc::prelude::*;
use noc::primitives::analysis;
use noc::sim::sweep::{self, SweepConfig};

#[test]
fn library_audits_confirm_optimality_claims() {
    // The paper claims its library entries complete "in optimum time with
    // minimum number of edges" — verify via the classical bounds.
    let report = analysis::audit_library(&CommLibrary::standard());
    assert_eq!(report.len(), 4);
    for q in &report {
        assert!(q.is_time_optimal, "{q}");
    }
    // The gossip entry is the one that compresses links (12 edges / 4
    // links); that ratio is what the Links lower bound uses.
    let mgg4 = report.iter().find(|q| q.label == "MGG4").unwrap();
    assert!((mgg4.compression_ratio - 3.0).abs() < 1e-12);

    // The extended library contains fold-constructed gossips that trade a
    // round or two for structural simplicity; the audit flags them.
    let extended = analysis::audit_library(&CommLibrary::extended());
    assert!(extended.iter().any(|q| q.is_time_optimal));
}

#[test]
fn load_sweep_on_synthesized_network() {
    // Synthesize for a gossip application, fill all-pairs routes, then
    // sweep uniform traffic across it.
    let acg = Acg::from_graph_uniform(DiGraph::complete(4), EdgeDemand::from_volume(64.0));
    let result = SynthesisFlow::new(acg).run().unwrap();
    let model = result.noc_model();
    let config = SweepConfig {
        rates: vec![0.05, 0.25],
        duration_cycles: 300,
        ..Default::default()
    };
    let energy = EnergyModel::new(TechnologyProfile::cmos_180nm());
    let points = sweep::sweep(&model, &config, &energy).unwrap();
    assert_eq!(points.len(), 2);
    assert!(points[0].packets > 0);
    assert!(points[1].avg_latency_cycles >= points[0].avg_latency_cycles);
}

#[test]
fn dot_export_through_the_flow() {
    let acg = noc::aes::aes_acg(0.0);
    let result = SynthesisFlow::new(acg.clone())
        .placement(Placement::grid(4, 4, 2.0, 2.0))
        .run()
        .unwrap();
    let dot = result.architecture.to_dot(&acg);
    // Every core appears, gossip links are labeled, and the remainder's
    // dedicated links show up as "direct".
    for r in 0..4 {
        for c in 0..4 {
            assert!(dot.contains(&format!("byte-r{r}c{c}")));
        }
    }
    assert!(dot.contains("MGG4"));
    assert!(dot.contains("direct"));
    assert!(dot.contains("L4"));
}

#[test]
fn co_optimized_flow_produces_simulatable_architecture() {
    let acg = Acg::from_graph_uniform(DiGraph::complete(4), EdgeDemand::from_volume(256.0));
    let (best, history) = SynthesisFlow::new(acg.clone())
        .objective(Objective::Energy)
        .seed(7)
        .run_co_optimized(3)
        .unwrap();
    assert!(!history.is_empty());
    let model = best.noc_model();
    let energy = EnergyModel::new(TechnologyProfile::cmos_180nm());
    let report = Simulator::new(&model, SimConfig::default(), energy)
        .run(noc::sim::traffic::acg_iteration(&acg))
        .unwrap();
    assert_eq!(report.packets_delivered, 12);
}

#[test]
fn o1turn_runs_aes_traffic_too() {
    // The stochastic mesh routes all pairs, so it can also host the AES
    // trace (an alternative baseline the paper's future work suggests
    // exploring).
    use noc::sim::{NocModel, Phase};
    let run = DistributedAes::new(&[1; 16]).encrypt_block(&[2; 16]);
    let phases: Vec<Phase> = run
        .trace
        .phases
        .iter()
        .map(|p| Phase {
            label: p.name.clone(),
            compute_cycles: p.compute_cycles,
            events: p
                .messages
                .iter()
                .map(|m| noc::sim::TrafficEvent::new(0, m.src, m.dst, m.bits))
                .collect(),
        })
        .collect();
    let model = NocModel::mesh_o1turn(4, 4, 2.0, 5);
    let energy = EnergyModel::new(TechnologyProfile::fpga_virtex2());
    let report = Simulator::new(&model, SimConfig::default(), energy)
        .run_phases(&phases)
        .unwrap();
    assert_eq!(report.packets_delivered, 552);
    assert!(report.total_cycles > 0);
}
